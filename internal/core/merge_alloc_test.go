package core

import (
	"fmt"
	"testing"

	"stat/internal/bitvec"
	"stat/internal/machine"
	"stat/internal/proto"
	"stat/internal/tbon"
	"stat/internal/topology"
	"stat/internal/trace"
)

// buildFilterChildren encodes two child payloads (each the usual 2D+3D
// tree pair) the way daemons produce them, under the given wire version,
// returned as leases the caller owns across filter invocations.
func buildFilterChildren(t testing.TB, hierarchical bool, version uint8) []*tbon.Lease {
	t.Helper()
	children := make([]*tbon.Lease, 2)
	for ci := range children {
		width := 5 + ci*3 // ragged widths so v1 label offsets hit every alignment
		total := width
		if !hierarchical {
			total = 16
		}
		t2, t3 := trace.NewTree(total), trace.NewTree(total)
		for local := 0; local < width; local++ {
			task := local
			if !hierarchical {
				task = ci*8 + local
			}
			t2.AddStack(task, "main", "solve", "mpi_wait")
			t2.AddStack(task, "main", "io")
			t3.AddStack(task, "main", "solve", "mpi_wait")
			t3.AddStack(task, "main", "solve", "barrier")
		}
		body, err := encodeTrees(version, t2, t3)
		if err != nil {
			t.Fatal(err)
		}
		t2.Release()
		t3.Release()
		children[ci] = tbon.NewLease(body, nil)
	}
	return children
}

func newAllocTool(t testing.TB, mode BitVecMode) *Tool {
	t.Helper()
	tool, err := New(Options{
		Machine:  machine.Atlas(),
		Tasks:    96,
		Topology: topology.Spec{Kind: topology.KindBalanced, Depth: 2},
		BitVec:   mode,
		Samples:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

// TestFilterCycleZeroAllocs is the acceptance guard for the leased-buffer
// refactor: one full decode→merge→encode filter cycle in hierarchical
// mode, on a warm codec, must not touch the heap at all — under both wire
// versions. Decode aliases or arena-carves every label, nodes and tree
// headers cycle through the codec free lists, the merge output routes
// through the codec arena, the encode writes into a pooled buffer, and
// the output lease comes from the lease pool.
func TestFilterCycleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	for _, version := range []uint8{trace.WireV1, trace.WireV2, trace.WireV3} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			filter := newAllocTool(t, Hierarchical).mergeFilter()
			children := buildFilterChildren(t, true, version)

			cycle := func() {
				out, err := filter(children)
				if err != nil {
					t.Fatal(err)
				}
				out.Release()
			}
			// Warm every pool on the path: codec free lists, arena slabs,
			// intern table, output buffer pool, lease pool.
			for i := 0; i < 10; i++ {
				cycle()
			}
			if n := testing.AllocsPerRun(200, cycle); n != 0 {
				t.Errorf("steady-state hierarchical filter cycle allocates %v per op, want 0", n)
			}
			for _, c := range children {
				c.Release()
			}
		})
	}
}

// TestFilterCycleAliasRate pins the STR2 alignment guarantee through the
// production filter: on a v2 stream every label passes the zero-copy
// decode's alignment check (a 100% alias rate, misses exactly zero),
// while the same trees on a v1 stream — whose varied name lengths push
// label words onto every byte offset — must record misses, proving the
// counter distinguishes the silent fallback from a hit.
func TestFilterCycleAliasRate(t *testing.T) {
	if !bitvec.HostLittleEndian() {
		t.Skip("zero-copy decode only aliases on little-endian hosts")
	}
	run := func(version uint8) (hits, misses int64) {
		tool := newAllocTool(t, Hierarchical)
		filter := tool.mergeFilter()
		children := buildFilterChildren(t, true, version)
		out, err := filter(children)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
		for _, c := range children {
			c.Release()
		}
		return tool.aliasHits.Load(), tool.aliasMisses.Load()
	}
	for _, version := range []uint8{trace.WireV2, trace.WireV3} {
		hits, misses := run(version)
		if misses != 0 {
			t.Errorf("v%d stream recorded %d alias misses, want 0 (hits %d)", version, misses, hits)
		}
		if hits == 0 {
			t.Errorf("v%d stream recorded no alias hits", version)
		}
	}
	if _, v1Misses := run(trace.WireV1); v1Misses == 0 {
		t.Error("v1 stream recorded no alias misses; the miss counter is not observing the fallback")
	}
}

// TestResultFilterCycleZeroAllocs guards the actual production path — the
// session's resultFilter, which unwraps MsgResult packets into sub-leases,
// runs the tree merger, and frames the output by writing the packet
// header in place in the pooled buffer. It too must be allocation-free at
// steady state, modulo the small fixed per-call slices (bodies, sub-lease
// structs) that the lease pool absorbs.
func TestResultFilterCycleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	filter := newAllocTool(t, Hierarchical).resultFilter(false)
	inner := buildFilterChildren(t, true, trace.WireV2)
	children := make([]*tbon.Lease, len(inner))
	for i, b := range inner {
		p := proto.Packet{Stream: proto.DataStream, Type: proto.MsgResult, Version: 2, Payload: b.Bytes()}
		children[i] = tbon.NewLease(p.Encode(), nil)
		b.Release()
	}
	cycle := func() {
		out, err := filter(nil, children)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	}
	for i := 0; i < 10; i++ {
		cycle()
	}
	// The bodies slice and release closure in resultFilter are the only
	// per-call allocations left; they are O(children), not O(payload).
	if n := testing.AllocsPerRun(200, cycle); n > 3 {
		t.Errorf("steady-state result-packet filter cycle allocates %v per op, want <= 3", n)
	}
	for _, c := range children {
		c.Release()
	}
}

// BenchmarkFilterCycle is the per-interior-node cost of a reduction: one
// decode→merge→encode cycle through the production filter on a warm
// codec. The hierarchical/original cases run their negotiated defaults
// (v3 compressed and v2 dense STR trees respectively); the explicit v2
// and v1 hierarchical cases keep the older formats measurable for the
// wire-size-vs-alias tradeoff. Gated in CI by cmd/benchgate against the
// committed baseline.
func BenchmarkFilterCycle(b *testing.B) {
	for _, tc := range []struct {
		name    string
		mode    BitVecMode
		version uint8
	}{
		{"hierarchical", Hierarchical, trace.WireV3},
		{"original", Original, trace.WireV2},
		{"hierarchical-v2", Hierarchical, trace.WireV2},
		{"hierarchical-v1", Hierarchical, trace.WireV1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			filter := newAllocTool(b, tc.mode).mergeFilter()
			children := buildFilterChildren(b, tc.mode == Hierarchical, tc.version)
			var bytes int64
			for _, c := range children {
				bytes += int64(c.Len())
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := filter(children)
				if err != nil {
					b.Fatal(err)
				}
				out.Release()
			}
			b.StopTimer()
			for _, c := range children {
				c.Release()
			}
		})
	}
}

// TestFilterCycleOriginalModeAllocsBounded keeps the original (union)
// representation honest too: it cannot be zero-alloc — the in-place union
// inserts fresh nodes and full-width labels for paths the accumulator
// lacks — but the decode and encode sides share the leased-buffer
// machinery, so the per-cycle count must stay small and flat rather than
// scaling with tree size.
func TestFilterCycleOriginalModeAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	filter := newAllocTool(t, Original).mergeFilter()
	children := buildFilterChildren(t, false, trace.WireV2)
	cycle := func() {
		out, err := filter(children)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	}
	for i := 0; i < 10; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n > 8 {
		t.Errorf("steady-state original-mode filter cycle allocates %v per op, want <= 8", n)
	}
	for _, c := range children {
		c.Release()
	}
}
