package core

import (
	"bytes"
	"testing"

	"stat/internal/machine"
	"stat/internal/proto"
	"stat/internal/tbon"
	"stat/internal/topology"
	"stat/internal/trace"
)

// TestSamplerDifferentialAcrossTopologies is the acceptance differential
// for the batched sampling engine: real daemon payloads produced by the
// engine, folded through the production result filter over every
// adversarial topology shape, must yield a root result packet
// byte-identical to the legacy per-sample path — across both
// representations and both wire versions. Identical packets imply
// identical merged trees; we decode and Equal-check them anyway so a
// failure localizes.
func TestSamplerDifferentialAcrossTopologies(t *testing.T) {
	topos := []struct {
		name  string
		build func() (*topology.Tree, error)
	}{
		{"flat", func() (*topology.Tree, error) { return topology.Flat(9) }},
		{"chain", func() (*topology.Tree, error) { return topology.Chain(5) }},
		{"ragged", func() (*topology.Tree, error) { return topology.Ragged(42, 3, 5) }},
		{"balanced", func() (*topology.Tree, error) { return topology.Balanced(2, 16) }},
		{"bgl", func() (*topology.Tree, error) { return topology.BGL2Deep(32) }},
	}
	gathers := []struct {
		name string
		req  proto.GatherRequest
	}{
		{"both", proto.GatherRequest{Which: proto.TreeBoth}},
		{"3d-detail", proto.GatherRequest{Which: proto.Tree3D, Detail: true}},
	}
	for _, mode := range []BitVecMode{Original, Hierarchical} {
		for _, version := range []uint8{1, 2} {
			for _, tc := range topos {
				topo, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				nLeaves := topo.NumLeaves()
				// Atlas runs 8 tasks per daemon, so this pins the tool's
				// daemon count to the test topology's leaf count.
				tasks := 8 * nLeaves

				runTool := func(s Sampler, greq proto.GatherRequest) []byte {
					tool, err := New(Options{
						Machine:        machine.Atlas(),
						Tasks:          tasks,
						Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
						BitVec:         mode,
						Samples:        3,
						ThreadsPerTask: 2,
						WireVersion:    version,
						Sampler:        s,
					})
					if err != nil {
						t.Fatal(err)
					}
					if tool.Daemons() != nLeaves {
						t.Fatalf("%s: tool has %d daemons, topology %d leaves", tc.name, tool.Daemons(), nLeaves)
					}
					daemons := make([]*daemon, nLeaves)
					for i := range daemons {
						daemons[i] = &daemon{
							leaf: i, tool: tool, state: stateSampled,
							samples: 3, threads: 2, epoch: 3, wireVersion: version,
						}
					}
					net := tbon.New(topo, nil)
					leaf := func(i int) (*tbon.Lease, error) {
						return daemons[i].gatherPacket(greq)
					}
					out, _, err := net.ReduceNodeLeasedWith(tbon.ReduceOptions{}, leaf, tool.resultFilter(false))
					if err != nil {
						t.Fatalf("%v/v%d/%s: %v", mode, version, tc.name, err)
					}
					return out
				}

				for _, g := range gathers {
					legacy := runTool(SamplerLegacy, g.req)
					batched := runTool(SamplerBatched, g.req)
					if !bytes.Equal(legacy, batched) {
						t.Errorf("%v/v%d/%s/%s: engine result packet differs from legacy path",
							mode, version, tc.name, g.name)
						continue
					}
					p, err := proto.Decode(batched)
					if err != nil {
						t.Fatal(err)
					}
					if p.Version != version {
						t.Errorf("%v/v%d/%s/%s: packet carries v%d", mode, version, tc.name, g.name, p.Version)
					}
					trees, err := decodeTrees(p.Payload)
					if err != nil {
						t.Fatalf("%v/v%d/%s/%s: decode: %v", mode, version, tc.name, g.name, err)
					}
					for ti, tr := range trees {
						if err := tr.Validate(); err != nil {
							t.Errorf("%v/v%d/%s/%s: tree %d invalid: %v", mode, version, tc.name, g.name, ti, err)
						}
					}
				}
			}
		}
	}
}

// TestSamplerDifferentialFullSession runs complete sessions (attach →
// sample → gather → remap → classes) under both samplers and pins the
// final rank-ordered trees and equivalence classes against each other —
// the end-to-end form of the differential, progress check included.
func TestSamplerDifferentialFullSession(t *testing.T) {
	for _, mode := range []BitVecMode{Original, Hierarchical} {
		base := Options{
			Machine:        machine.Atlas(),
			Tasks:          96,
			Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
			BitVec:         mode,
			Samples:        4,
			ThreadsPerTask: 2,
		}
		results := make([]*Result, 2)
		reports := make([]*ProgressReport, 2)
		for i, s := range []Sampler{SamplerLegacy, SamplerBatched} {
			opts := base
			opts.Sampler = s
			tool, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if results[i], err = tool.MeasureMerge(); err != nil {
				t.Fatal(err)
			}
			if results[i].MergeErr != nil {
				t.Fatal(results[i].MergeErr)
			}
			ptool, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if reports[i], err = ptool.ProgressCheck(); err != nil {
				t.Fatal(err)
			}
		}
		for _, pair := range []struct {
			name           string
			legacy, engine *trace.Tree
		}{
			{"2D", results[0].Tree2D, results[1].Tree2D},
			{"3D", results[0].Tree3D, results[1].Tree3D},
			{"progress-before", reports[0].Before, reports[1].Before},
			{"progress-after", reports[0].After, reports[1].After},
		} {
			if !pair.legacy.Equal(pair.engine) {
				t.Errorf("%v/%s: engine tree differs from legacy", mode, pair.name)
				continue
			}
			el, err := pair.legacy.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			ee, err := pair.engine.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(el, ee) {
				t.Errorf("%v/%s: encodings differ", mode, pair.name)
			}
		}
		if len(results[0].Classes) != len(results[1].Classes) {
			t.Fatalf("%v: %d vs %d classes", mode, len(results[0].Classes), len(results[1].Classes))
		}
		if !reports[0].Stuck.Equal(reports[1].Stuck) {
			t.Errorf("%v: progress checks disagree on stuck tasks", mode)
		}
		// The engine's counters must be live on the batched run and silent
		// on the legacy one.
		if results[0].SampleStats.SampledStacks != 0 {
			t.Error("legacy run reported engine sampling counters")
		}
		ss := results[1].SampleStats
		wantStacks := int64(96 * 4 * 2) // tasks × samples × threads
		if ss.SampledStacks != wantStacks {
			t.Errorf("%v: SampledStacks = %d, want %d", mode, ss.SampledStacks, wantStacks)
		}
		if ss.DistinctStacks == 0 || ss.PCCacheMisses == 0 {
			t.Errorf("%v: distinct-stack/cache counters silent: %+v", mode, ss)
		}
	}
}

// TestSamplePhaseZeroAllocs is the acceptance guard for the batched
// engine: a steady-state daemon sampling round — walk every local stack,
// emit both trees, release — must not touch the heap at all. The legacy
// path allocated frames, trees and labels per sample; the engine's trie,
// memo, resolver cache and emitted-node pool absorb all of it.
func TestSamplePhaseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	tool, err := New(Options{
		Machine:        machine.Atlas(),
		Tasks:          96,
		Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
		BitVec:         Hierarchical,
		Samples:        5,
		ThreadsPerTask: 2,
		SampleWorkers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{leaf: 0, tool: tool, state: stateSampled, samples: 5, threads: 2, epoch: 5, wireVersion: 2}
	req := proto.GatherRequest{Which: proto.TreeBoth}
	cycle := func() {
		sb, err := d.sampleTrees(req)
		if err != nil {
			t.Fatal(err)
		}
		sb.release()
	}
	for i := 0; i < 10; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Errorf("steady-state sample phase allocates %v per round, want 0", n)
	}

	// The full leaf product — sampling plus the leased packet encode —
	// stays zero-alloc too, extending PR 3/4's guarantee through the new
	// engine.
	packetCycle := func() {
		lease, err := d.gatherPacket(req)
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	for i := 0; i < 10; i++ {
		packetCycle()
	}
	if n := testing.AllocsPerRun(200, packetCycle); n != 0 {
		t.Errorf("steady-state gather packet cycle allocates %v per round, want 0", n)
	}

	// The live snapshot-emit pipeline (two walkers, so the prefetch cap
	// admits speculation) must hold the same guarantee: claim, seal,
	// background respawn, and concurrent emit all recycle walker-resident
	// state. The fixed epoch makes every speculation miss — the costlier
	// steady state, since it adds the inline re-walk.
	tool2, err := New(Options{
		Machine:        machine.Atlas(),
		Tasks:          96,
		Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
		BitVec:         Hierarchical,
		Samples:        5,
		ThreadsPerTask: 2,
		SampleWorkers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2 := &daemon{leaf: 0, tool: tool2, state: stateSampled, samples: 5, threads: 2, epoch: 5, wireVersion: 2}
	overlapCycle := func() {
		lease, err := d2.gatherPacket(req)
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	for i := 0; i < 10; i++ {
		overlapCycle()
	}
	if d2.pre == nil {
		t.Fatal("overlap pipeline did not leave a prefetch outstanding")
	}
	if n := testing.AllocsPerRun(200, overlapCycle); n != 0 {
		t.Errorf("steady-state overlapped gather cycle allocates %v per round, want 0", n)
	}
	d2.pre.Cancel()
	d2.pre = nil
}
