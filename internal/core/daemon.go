package core

import (
	"fmt"
	"time"

	"stat/internal/proto"
	"stat/internal/sample"
	"stat/internal/stackwalk"
	"stat/internal/tbon"
	"stat/internal/telemetry"
	"stat/internal/trace"
)

// daemonState tracks a tool daemon's position in the session protocol.
type daemonState int

const (
	stateInit daemonState = iota
	stateAttached
	stateSampled
	stateDetached
)

func (s daemonState) String() string {
	switch s {
	case stateInit:
		return "init"
	case stateAttached:
		return "attached"
	case stateSampled:
		return "sampled"
	case stateDetached:
		return "detached"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// daemon is one STAT back-end: it attaches to the application processes
// co-located on its node, walks their stacks on command, folds the traces
// into local prefix trees, and forwards them when the gather command
// arrives. State transitions are driven purely by protocol packets, as
// they are for the real tool's daemons.
type daemon struct {
	leaf  int
	tool  *Tool
	state daemonState

	// Sampling parameters recorded by the sample command; the walk itself
	// runs lazily at gather time so that a 1,664-daemon session does not
	// hold every daemon's trees in memory at once (the fold in the overlay
	// consumes each payload as it is produced).
	samples int
	threads int
	// epoch advances with every sample command so that repeated rounds in
	// one session observe fresh samples — how the tool distinguishes a
	// task that is stuck from one that is merely waiting.
	epoch int
	// wireVersion is the data-stream wire version negotiated at attach:
	// the highest version both the front end (per its attach request) and
	// this daemon speak. Gather payloads are encoded in it.
	wireVersion uint8
	// capVersion, when nonzero, caps the version this daemon advertises —
	// a simulated older daemon build inside a newer fleet
	// (Options.DaemonWireCaps). The attach negotiation can land at most
	// here, and the session-wide minimum then carries the downgrade.
	capVersion uint8
	// pre is the daemon's outstanding speculative walk under the
	// snapshot-emit pipeline (Options.Overlap): the next round's walk,
	// started the moment this round's snapshot was sealed, still running
	// while this round's trees travel up the overlay. The next gather
	// claims it; detach cancels it.
	pre *sample.Prefetch
	// telemFrame and telemBuf are the daemon's reusable telemetry leaf
	// state: the round's frame is built in telemFrame and encoded into
	// telemBuf before being appended to the gather reply, so the
	// instrumented leaf path allocates nothing at steady state.
	telemFrame telemetry.Frame
	telemBuf   []byte
}

// handleControl advances the daemon's state machine for one control
// packet and returns its acknowledgement.
func (d *daemon) handleControl(p proto.Packet) proto.Ack {
	fail := func(format string, args ...any) proto.Ack {
		return proto.Ack{FirstError: fmt.Sprintf("daemon %d: ", d.leaf) + fmt.Sprintf(format, args...)}
	}
	switch p.Type {
	case proto.MsgAttach:
		if d.state != stateInit && d.state != stateDetached {
			return fail("attach while %s", d.state)
		}
		req, err := proto.DecodeAttachRequest(p.Payload)
		if err != nil {
			return fail("%v", err)
		}
		limit := d.tool.maxWireVersion()
		if d.capVersion != 0 && d.capVersion < limit {
			limit = d.capVersion
		}
		d.wireVersion = proto.Negotiate(req.MaxVersion, limit)
		d.state = stateAttached
		return proto.Ack{OK: 1, Version: d.wireVersion}
	case proto.MsgSample:
		if d.state != stateAttached && d.state != stateSampled {
			return fail("sample while %s", d.state)
		}
		req, err := proto.DecodeSampleRequest(p.Payload)
		if err != nil {
			return fail("%v", err)
		}
		if req.Samples == 0 || req.Threads == 0 {
			return fail("sample request with zero samples or threads")
		}
		d.samples = int(req.Samples)
		d.threads = int(req.Threads)
		d.epoch += d.samples
		d.state = stateSampled
		return proto.Ack{OK: 1}
	case proto.MsgDetach:
		if d.state == stateInit {
			return fail("detach before attach")
		}
		d.pre.Cancel()
		d.pre = nil
		d.state = stateDetached
		return proto.Ack{OK: 1}
	default:
		return fail("unexpected control packet %v", p.Type)
	}
}

// sampleBatch is one gather round's sampled trees plus the hook returning
// their storage: a sample.Batch on the engine path, the trees' own Release
// on the legacy path. A value type so the per-gather hot path carries no
// closure.
type sampleBatch struct {
	t2, t3 *trace.Tree
	batch  sample.Batch
	legacy bool
	// delta marks t2/t3 as delta frames (XOR trees from the engine's
	// round-over-round extractor) rather than whole trees; the gather
	// reply then goes out as MsgDelta.
	delta bool
	// walkNs and sealNs are the round's walk and seal durations,
	// populated only when the gather requested telemetry.
	walkNs int64
	sealNs int64
}

func (b *sampleBatch) release() {
	if b.legacy {
		if b.t2 != nil {
			b.t2.Release()
		}
		if b.t3 != nil {
			b.t3.Release()
		}
		return
	}
	b.batch.Release()
}

// sampleTrees runs the daemon's sampling for one gather command — the
// real per-daemon work of the tool's sample phase — and returns the
// requested prefix trees. On the batched path (the default) the walk runs
// through the shared direct-to-tree engine: raw PC stacks accumulate in
// the daemon walker's persistent trie, symbols resolve through the
// memoized cache, and the trees emit without any per-sample allocation.
// The legacy path materializes resolved frames per sample and folds each
// trace into a fresh tree, kept as the differential reference.
func (d *daemon) sampleTrees(req proto.GatherRequest) (sampleBatch, error) {
	if d.state != stateSampled {
		return sampleBatch{}, fmt.Errorf("core: daemon %d: gather while %s", d.leaf, d.state)
	}
	ranks := d.tool.taskMap[d.leaf]
	width := len(ranks)
	if d.tool.opts.BitVec == Original {
		width = d.tool.opts.Tasks
	}
	base := d.epoch - d.samples

	if eng := d.tool.sampler; eng != nil {
		sreq := sample.Request{
			Ranks:       ranks,
			GlobalIndex: d.tool.opts.BitVec == Original,
			Width:       width,
			Samples:     d.samples,
			Threads:     d.threads,
			Base:        base,
			Detail:      req.Detail,
			Want2D:      req.Which&proto.Tree2D != 0,
			Want3D:      req.Which&proto.Tree3D != 0,
			// Walk/seal span durations for the telemetry frame; clock
			// reads happen only on instrumented rounds.
			Timed: req.Telemetry,
			// On a v3 stream the encode would pick compressed containers
			// anyway; emitting them from the trie means the leaf serialize
			// reads extents the walk already computed. Older streams carry
			// dense labels, so compression would be pure overhead there.
			Compress: d.wireVersion >= trace.WireV3,
			// Delta frames exist only in the v2+ formats; a v1-capped
			// daemon inside a streaming fleet simply keeps answering with
			// whole trees (and the mixed-round recovery downgrades the
			// round — the wire-negotiation min-merge rule extended to
			// frame kinds).
			Delta: req.Delta && d.wireVersion >= trace.WireV2,
		}
		if sreq.Delta {
			// Streaming rounds need round-over-round trie continuity: the
			// resident keyed walker guarantees consecutive rounds of this
			// daemon seal consecutive epochs on one trie, which pooled
			// checkout can't (walkers shuffle across daemons). The round
			// before the first delta request may have walked a pooled
			// walker, so the keyed walker's first round emits whole trees
			// and deltas start one round later.
			batch := eng.SampleKeyed(d.leaf, sreq)
			if batch.DeltaOK {
				return sampleBatch{t2: batch.Delta2D, t3: batch.Delta3D, batch: batch, delta: true,
					walkNs: batch.WalkNanos, sealNs: batch.SealNanos}, nil
			}
			return sampleBatch{t2: batch.Tree2D, t3: batch.Tree3D, batch: batch,
				walkNs: batch.WalkNanos, sealNs: batch.SealNanos}, nil
		}
		if d.tool.opts.Overlap == OverlapSnapshot && !d.tool.opts.FaultTolerant {
			// Speculate the next round: same shape, advanced by one sample
			// command (the next gather's base is this round's end epoch).
			// A wrong guess costs nothing but the wasted background walk —
			// the claim validates the real request and re-walks on
			// mismatch. FaultTolerant gathers are excluded because a
			// timed-out subtree's abandoned goroutine could reach d.pre
			// after the session has moved on.
			next := sreq
			next.Base = d.epoch
			batch, npre := eng.SampleOverlap(d.pre, sreq, &next)
			d.pre = npre
			return sampleBatch{t2: batch.Tree2D, t3: batch.Tree3D, batch: batch,
				walkNs: batch.WalkNanos, sealNs: batch.SealNanos}, nil
		}
		batch := eng.Sample(sreq)
		return sampleBatch{t2: batch.Tree2D, t3: batch.Tree3D, batch: batch,
			walkNs: batch.WalkNanos, sealNs: batch.SealNanos}, nil
	}

	var walkStart time.Time
	if req.Telemetry {
		walkStart = time.Now()
	}
	t2 := trace.NewTree(width)
	t3 := trace.NewTree(width)
	walker := stackwalk.NewWalker(d.tool.app, d.tool.symtab)
	for local, rank := range ranks {
		idx := local
		if d.tool.opts.BitVec == Original {
			idx = rank
		}
		for thread := 0; thread < d.threads; thread++ {
			for s := 0; s < d.samples; s++ {
				var frames []trace.Frame
				if req.Detail {
					frames = walker.SampleDetailed(rank, thread, base+s)
				} else {
					frames = walker.Sample(rank, thread, base+s)
				}
				tr := trace.Trace{Task: idx, Frames: frames}
				if req.Which&proto.Tree3D != 0 {
					t3.Add(tr)
				}
				if req.Which&proto.Tree2D != 0 && s == d.samples-1 {
					t2.Add(tr)
				}
			}
		}
	}
	sb := sampleBatch{t2: t2, t3: t3, legacy: true}
	if req.Telemetry {
		// The legacy loop has no distinct seal phase; the whole
		// materialize-and-fold pass is its walk.
		sb.walkNs = time.Since(walkStart).Nanoseconds()
	}
	return sb, nil
}

// gatherPacket performs the daemon's real work for a gather command as an
// async sample/emit pipeline. sampleTrees claims the round's walk (already
// running in the background when the previous gather speculated right, run
// inline otherwise), seals the trie snapshot, and — under
// Options.OverlapSnapshot — immediately kicks off the next round's walk
// before emitting; the emit, the encode below, and the whole upstream
// reduction then read only the sealed snapshot, concurrently with that
// walk. The emitted trees alias snapshot storage, so the sampleTrees
// result is handed to the gather reply without copying: the trees are
// serialized — in the wire version negotiated at attach — as a complete
// MsgResult packet minted from the shared buffer pool behind a lease. The
// payload is encoded in place after a reserved packet header, and the
// lease's free hook returns the buffer to the pool once the parent's
// filter is done with it, so leaf payload production allocates nothing at
// steady state (ROADMAP's "leased buffers end to end"). Under v2 the
// pooled buffer's 8-aligned base plus the 16-byte header land every label
// word-aligned for the upstream zero-copy decode.
//
// On instrumented rounds (req.Telemetry, v2+) the daemon additionally
// appends its telemetry frame — walk/seal/encode/send spans, payload
// bytes — as a body trailer (proto.AppendTelemetrySection) and records
// the same spans into its flight recorder. Both write into per-daemon
// reusable scratch, keeping the instrumented path allocation-free.
func (d *daemon) gatherPacket(req proto.GatherRequest) (*tbon.Lease, error) {
	version := d.wireVersion
	if version == 0 {
		version = proto.Version
	}
	// Telemetry sections exist only in the v2+ formats; a v1-encoding
	// daemon inside an instrumented fleet simply ships a bare body (and
	// the min-merge downgrade drops the section at the join above it).
	telem := req.Telemetry && version >= trace.WireV2 && d.tool.telem != nil
	sb, err := d.sampleTrees(req)
	if err != nil {
		return nil, err
	}
	var treeBuf [2]*trace.Tree
	var trees []*trace.Tree
	switch req.Which {
	case proto.Tree2D:
		treeBuf[0] = sb.t2
		trees = treeBuf[:1]
	case proto.Tree3D:
		treeBuf[0] = sb.t3
		trees = treeBuf[:1]
	default:
		treeBuf[0], treeBuf[1] = sb.t2, sb.t3
		trees = treeBuf[:2]
	}
	hdr := proto.HeaderSizeV(version)
	size := encodedTreesSize(version, trees)
	extra := 0
	var sendStart, encStart time.Time
	if telem {
		// Reserve the section's bytes up front so the append below can
		// never grow (and therefore never strand) the pooled buffer.
		extra = proto.TelemetrySectionLen(telemetry.EncodedFrameSize)
		sendStart = time.Now()
	}
	buf := outBufs.Get(hdr + size + extra)
	if telem {
		encStart = time.Now()
	}
	packet, err := encodeFramesInto(buf[:hdr], version, sb.delta, trees...)
	sb.release()
	if err != nil {
		outBufs.Put(buf)
		return nil, err
	}
	typ := proto.MsgResult
	if sb.delta {
		typ = proto.MsgDelta
	}
	if telem {
		now := time.Now()
		encodeNs := now.Sub(encStart).Nanoseconds()
		// Send covers the assembly cost measurable before the frame
		// freezes: the pooled-buffer mint. The header and trailer
		// writes land after the frame is encoded and cost nanoseconds.
		sendNs := encStart.Sub(sendStart).Nanoseconds()
		round := int32(d.epoch)
		f := &d.telemFrame
		*f = telemetry.Frame{Daemons: 1, Round: round}
		f.Observe(telemetry.SpanWalk, sb.walkNs)
		f.Observe(telemetry.SpanSeal, sb.sealNs)
		f.Observe(telemetry.SpanEncode, encodeNs)
		f.Observe(telemetry.SpanSend, sendNs)
		f.PayloadBytes = int64(len(packet) - hdr)
		f.LiveLeases = tbon.LiveLeases()
		rec := d.tool.telem.recorders[d.leaf]
		base := sendStart.UnixNano()
		rec.Record(telemetry.SpanWalk, round, base-sb.sealNs-sb.walkNs, sb.walkNs)
		rec.Record(telemetry.SpanSeal, round, base-sb.sealNs, sb.sealNs)
		rec.Record(telemetry.SpanEncode, round, encStart.UnixNano(), encodeNs)
		rec.Record(telemetry.SpanSend, round, base, sendNs)
		d.telemBuf = f.AppendTo(d.telemBuf[:0])
		packet = proto.AppendTelemetrySection(packet, d.telemBuf)
	}
	proto.PutHeaderV(packet, version, proto.DataStream, typ, len(packet)-hdr)
	return tbon.NewLease(packet, recycleOutBuf), nil
}
