// Package plot renders series as ASCII line charts, so the experiment
// harness can emit figure-shaped output (the paper's Figures 2–10 are
// line plots) in addition to numeric tables. Log-scale axes are supported
// because every figure in the paper sweeps scale in powers of two.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Failed marks points plotted with 'x' (environment failures).
	Failed []bool
}

// Chart is a renderable plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters;
	// zero selects 64×20.
	Width, Height int
	// LogX/LogY select logarithmic axes.
	LogX, LogY bool
	Series     []Series
}

// markers label the series in order.
var markers = []byte{'*', 'o', '+', '#', '@', '%', '&', '~'}

func (c *Chart) dims() (int, int) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// transform maps a value to axis space.
func transform(v float64, log bool) (float64, bool) {
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.dims()

	// Axis ranges over transformed coordinates.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			tx, okx := transform(s.X[i], c.LogX)
			ty, oky := transform(s.Y[i], c.LogY)
			if !okx || !oky {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, tx), math.Max(maxX, tx)
			minY, maxY = math.Min(minY, ty), math.Max(maxY, ty)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	if !any {
		sb.WriteString("(no plottable points)\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, mark byte) {
		tx, okx := transform(x, c.LogX)
		ty, oky := transform(y, c.LogY)
		if !okx || !oky {
			return
		}
		col := int(math.Round((tx - minX) / (maxX - minX) * float64(w-1)))
		row := h - 1 - int(math.Round((ty-minY)/(maxY-minY)*float64(h-1)))
		if col < 0 || col >= w || row < 0 || row >= h {
			return
		}
		grid[row][col] = mark
	}
	// Draw connecting segments first (dots), then the point markers on
	// top, so lines never obscure data points.
	for si, s := range c.Series {
		_ = si
		for i := 1; i < len(s.X); i++ {
			x0, ok0 := transform(s.X[i-1], c.LogX)
			y0, ok0y := transform(s.Y[i-1], c.LogY)
			x1, ok1 := transform(s.X[i], c.LogX)
			y1, ok1y := transform(s.Y[i], c.LogY)
			if !ok0 || !ok0y || !ok1 || !ok1y {
				continue
			}
			const steps = 48
			for t := 1; t < steps; t++ {
				fx := x0 + (x1-x0)*float64(t)/steps
				fy := y0 + (y1-y0)*float64(t)/steps
				col := int(math.Round((fx - minX) / (maxX - minX) * float64(w-1)))
				row := h - 1 - int(math.Round((fy-minY)/(maxY-minY)*float64(h-1)))
				if col >= 0 && col < w && row >= 0 && row < h && grid[row][col] == ' ' {
					grid[row][col] = '.'
				}
			}
		}
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			m := mark
			if i < len(s.Failed) && s.Failed[i] {
				m = 'x'
			}
			put(s.X[i], s.Y[i], m)
		}
	}

	// Y-axis labels: top, middle, bottom.
	ylab := func(row int) string {
		frac := float64(h-1-row) / float64(h-1)
		v := minY + frac*(maxY-minY)
		if c.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for row := 0; row < h; row++ {
		switch row {
		case 0, h / 2, h - 1:
			sb.WriteString(ylab(row))
		default:
			sb.WriteString(strings.Repeat(" ", 9))
		}
		sb.WriteString(" |")
		sb.Write(grid[row])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", w) + "\n")
	lo, hi := minX, maxX
	if c.LogX {
		lo, hi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	axis := fmt.Sprintf("%-12.6g%s%12.6g", lo, strings.Repeat(" ", maxInt(1, w-13)), hi)
	sb.WriteString(strings.Repeat(" ", 11) + axis + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%11sx: %s", "", c.XLabel)
		if c.LogX {
			sb.WriteString(" (log)")
		}
		fmt.Fprintf(&sb, ", y: %s", c.YLabel)
		if c.LogY {
			sb.WriteString(" (log)")
		}
		sb.WriteByte('\n')
	}
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "%11s%c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
