package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		XLabel: "daemons",
		YLabel: "seconds",
		Series: []Series{
			{Name: "linear", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
			{Name: "flat", X: []float64{1, 2, 3, 4}, Y: []float64{2, 2, 2, 2}},
		},
	}
	out := c.Render()
	for _, want := range []string{"demo", "*", "o", "linear", "flat", "x: daemons", "y: seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Plot area has the default height (20 rows) plus axis/legend lines.
	if got := strings.Count(out, "\n"); got < 22 {
		t.Errorf("only %d lines:\n%s", got, out)
	}
}

func TestRenderLinearShape(t *testing.T) {
	// A strictly increasing line must place its max at the top row and
	// min at the bottom row of the plot area.
	c := &Chart{
		Width: 40, Height: 10,
		Series: []Series{{Name: "s", X: []float64{0, 100}, Y: []float64{0, 10}}},
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[9]
	if !strings.Contains(top, "*") {
		t.Errorf("max not on top row:\n%s", out)
	}
	if !strings.Contains(bottom, "*") {
		t.Errorf("min not on bottom row:\n%s", out)
	}
	// The top row marker is to the right of the bottom row marker.
	if strings.IndexByte(top, '*') <= strings.IndexByte(bottom, '*') {
		t.Errorf("line does not ascend rightward:\n%s", out)
	}
}

func TestRenderLogAxes(t *testing.T) {
	c := &Chart{
		LogX: true, LogY: true,
		Width: 40, Height: 8,
		Series: []Series{{
			Name: "pow", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 10, 100, 1000},
		}},
	}
	out := c.Render()
	// On log-log a power law is a straight diagonal: the four markers sit
	// on four distinct rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		// Count only plot-area rows (containing the axis bar), not the
		// legend line.
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			rows++
		}
	}
	if rows != 4 {
		t.Errorf("log-log power law spans %d rows, want 4:\n%s", rows, out)
	}
}

func TestRenderSkipsNonPositiveOnLog(t *testing.T) {
	c := &Chart{
		LogY:   true,
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{0, 10}}},
	}
	out := c.Render() // must not panic; zero point skipped
	if !strings.Contains(out, "*") {
		t.Errorf("surviving point not plotted:\n%s", out)
	}
}

func TestRenderFailedMarkers(t *testing.T) {
	c := &Chart{
		Series: []Series{{
			Name: "s", X: []float64{1, 2}, Y: []float64{1, 2},
			Failed: []bool{false, true},
		}},
	}
	if out := c.Render(); !strings.Contains(out, "x") {
		t.Errorf("failed point not marked:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no plottable points") {
		t.Errorf("empty chart output:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all X equal, all Y equal) must not divide by zero.
	c := &Chart{
		Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{3, 3}}},
	}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}
