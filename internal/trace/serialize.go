package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"stat/internal/bitvec"
)

// # Wire format specification
//
// Three tree wire formats exist, distinguished by magic and negotiated per
// stream by the protocol layer (see package proto). All integers are
// little endian; in v1 and v2 a label is a bitvec binary value (u32 width,
// u32 word count, words).
//
// Version 1, magic "STR1" — the compact original layout:
//
//	tree := magic "STR1" (4 bytes), u32 numTasks, node
//	node := u16 nameLen, name, label, u32 childCount, node*
//
// Version 2, magic "STR2" — the 8-aligned layout. Every field group is
// padded with zero bytes to the next 8-byte boundary, measured from the
// start of the tree encoding:
//
//	tree := magic "STR2" (4 bytes), u32 numTasks, node
//	node := u16 nameLen, name, pad8, label, u32 childCount, u32 zero, node*
//
// where pad8 is 0–7 zero bytes advancing the offset to a multiple of 8.
// The tree header is 8 bytes, the padded name record and the trailing
// child-count group are multiples of 8, and a label (8-byte header plus
// whole words) is a multiple of 8, so by induction every node — and in
// particular every label's word area — begins at an offset that is a
// multiple of 8 from the tree start. When the enclosing framing places the
// tree start 8-aligned in memory (the v2 packet and tree-list framings
// do), every label word lands word-aligned and the zero-copy decode
// aliases 100% of labels instead of the ~1/8 that happen to align under
// v1. The price is the padding: at BG/L widths labels dwarf names, so the
// overhead is a few percent of wire size.
//
// Alignment rule: decoders measure padding from the start of the tree
// encoding (offset 0 = first magic byte), so a v2 tree is self-consistent
// wherever it lands; only the *aliasing* payoff needs the enclosing buffer
// to be 8-aligned in memory.
//
// Version 3, magic "STR3" — the adaptive compressed-label layout. The
// node structure, padding discipline and alignment rule are exactly v2's;
// only the label encoding differs:
//
//	tree   := magic "STR3" (4 bytes), u32 numTasks, node
//	node   := u16 nameLen, name, pad8, label3, u32 childCount, u32 zero, node*
//	label3 := u32 width, u8 kind, u8 zero ×3, u32 count, u32 zero, payload
//
// The label3 header is 16 bytes, so an 8-aligned label starts its payload
// 8-aligned too. kind selects the container and count sizes the payload:
//
//	kind 0 (dense): count = ceil(width/64); payload is count u64 words,
//	  exactly the v1/v2 word area — bits beyond width must be zero.
//	kind 1 (run):   count run extents, each (u32 start, u32 length) with
//	  length ≥ 1, sorted, non-overlapping and non-adjacent (maximal runs).
//	kind 2 (array): count member ranks as sorted, strictly increasing u32,
//	  plus one zero u32 of padding when count is odd.
//
// Every payload is a whole number of 8-byte groups, preserving v2's
// induction: every label — dense words, run extents, or member array —
// lands 8-aligned and the zero-copy decode can alias any container kind.
// The kind is not a free choice: encoders pick the smallest container for
// the population (ties break run ≤ array ≤ dense) and decoders reject any
// other kind for that population, keeping the encoding canonical. See
// bitvec's label3 documentation for the byte-exact container rules and
// the choice heuristic.
//
// All decoders admit only canonical encodings — nonzero padding, stray
// label bits, non-canonical containers, non-sorted children and trailing
// bytes are all rejected — so decode∘encode is the identity on accepted
// inputs, per version.
//
// # Delta frames, magics "STD2" and "STD3"
//
// A delta frame carries the CHANGE between a subtree's trees in two
// successive stream rounds instead of the whole tree. Byte for byte it is
// the v2/v3 tree layout under a delta magic — same fields, same padding
// discipline, same alignment rule, same canonical-container rules:
//
//	delta  := magic "STD2" (4 bytes), u32 numTasks, dnode   (v2 labels)
//	delta  := magic "STD3" (4 bytes), u32 numTasks, dnode   (v3 label3)
//	dnode  := exactly the node layout of the same-numbered STR format
//
// Only the label SEMANTICS differ: a dnode's label is the bitwise XOR of
// the node's task sets in round N and round N−1, where a node absent from
// a round contributes the empty set. The three tentpole cases fall out of
// that one rule:
//
//	new node:      XOR = its full round-N label (XOR with zero)
//	removed node:  XOR = its full round-N−1 label (XOR to zero)
//	changed node:  XOR = the toggled ranks only
//	untouched:     XOR = ∅ — the node is OMITTED from the frame
//
// Folding a frame into the live tree is therefore label ^= XOR along
// aligned node paths, creating nodes the live tree lacks and deleting
// nodes whose labels fold to empty (see ApplyDelta). XOR is linear, so
// the rank remap and the concat offset shift commute with it — delta
// frames ride the same fused-remap decode and k-way concat merge as whole
// trees, and interior filters combine disjoint change sets by
// concatenation (hierarchical) or XOR (original mode's full-width labels).
//
// Canonical form adds one rule on top of the base format's: a non-root
// dnode with an empty XOR label MUST have at least one child (it exists
// only to route the path to changed descendants); an empty-XOR leaf
// contributes nothing and is rejected. The root is exempt — a root-only
// frame with an empty label is the canonical "nothing changed" frame.
// There is no v1 delta format: delta frames exist only on streams
// negotiated to v2 or higher, and v1 sessions fall back to whole-tree
// rounds (the min-merge downgrade).
//
// The format is deliberately explicit about label width: in the original
// representation every label is full-job width, so the encoded size of a
// daemon's tree grows with the whole job even though only a few bits are
// set. That blowup — visible directly in SerializedSize — is the network
// pressure behind Figure 5.

// Wire format versions. The values match the protocol versions carried in
// packet headers (proto.Version / proto.MaxVersion): a stream negotiated
// to version v carries trees in tree wire format v.
const (
	// WireV1 is the compact v1 layout (magic "STR1").
	WireV1 uint8 = 1
	// WireV2 is the 8-aligned layout (magic "STR2") whose labels always
	// land word-aligned for the zero-copy decode.
	WireV2 uint8 = 2
	// WireV3 is the 8-aligned layout with adaptive compressed labels
	// (magic "STR3"): each label travels as the smallest of a run, array
	// or dense container, so wire size tracks a label's run structure
	// instead of the task-space width.
	WireV3 uint8 = 3
	// MaxWireVersion is the newest format this build encodes and decodes.
	MaxWireVersion = WireV3
)

var (
	magicV1 = [4]byte{'S', 'T', 'R', '1'}
	magicV2 = [4]byte{'S', 'T', 'R', '2'}
	magicV3 = [4]byte{'S', 'T', 'R', '3'}
	// Delta-frame magics: the same-numbered layout carrying XOR labels
	// (see the delta-frame section of the wire spec above). No v1 delta
	// exists — v1 streams fall back to whole-tree rounds.
	magicD2 = [4]byte{'S', 'T', 'D', '2'}
	magicD3 = [4]byte{'S', 'T', 'D', '3'}
)

// SniffWireVersion reports which wire format b begins with, from the
// magic alone. It is how version-dispatched decoders (UnmarshalBinary,
// the codec decodes, core's tree-list framing) pick a layout. Delta
// frames are rejected here: a consumer expecting a whole tree must not
// silently accept XOR labels (use SniffFrame to admit both).
func SniffWireVersion(b []byte) (uint8, error) {
	if len(b) < 4 {
		return 0, errors.New("trace: truncated header")
	}
	switch [4]byte(b[0:4]) {
	case magicV1:
		return WireV1, nil
	case magicV2:
		return WireV2, nil
	case magicV3:
		return WireV3, nil
	}
	return 0, errBadMagic
}

// SniffFrame reports the wire version b begins with and whether it is a
// delta frame ("STD2"/"STD3") rather than a whole tree. Consumers that
// can handle both kinds (the stream gather's tree-list framing) dispatch
// here; whole-tree-only consumers keep using SniffWireVersion, whose
// rejection of delta magics is what stops an XOR label set from being
// mistaken for a task set.
func SniffFrame(b []byte) (version uint8, delta bool, err error) {
	if len(b) < 4 {
		return 0, false, errors.New("trace: truncated header")
	}
	switch [4]byte(b[0:4]) {
	case magicD2:
		return WireV2, true, nil
	case magicD3:
		return WireV3, true, nil
	}
	v, err := SniffWireVersion(b)
	return v, false, err
}

// errBadMagic names the accepted version range; built once (not per
// call) because version probing sniffs speculatively on hot paths.
var errBadMagic = fmt.Errorf("trace: bad magic (this build speaks v%d..v%d)", WireV1, MaxWireVersion)

// pad8 reports the zero padding that advances offset n to the next 8-byte
// boundary.
func pad8(n int) int { return -n & 7 }

// SerializedSize reports the exact size of MarshalBinary's output without
// allocating it (the v1 encoding; use SerializedSizeV for a specific
// version).
func (t *Tree) SerializedSize() int { return t.SerializedSizeV(WireV1) }

// SerializedSizeV reports the exact encoded size under the given wire
// version without allocating it.
func (t *Tree) SerializedSizeV(version uint8) int {
	size := 4 + 4
	switch version {
	case WireV3:
		t.walk(func(n *Node, _ int) {
			name := 2 + len(n.Frame.Function)
			size += name + pad8(name) + bitvec.Label3Size(n.Tasks) + 8
		})
	case WireV2:
		t.walk(func(n *Node, _ int) {
			name := 2 + len(n.Frame.Function)
			size += name + pad8(name) + n.Tasks.SerializedSize() + 8
		})
	default:
		t.walk(func(n *Node, _ int) {
			size += 2 + len(n.Frame.Function) + n.Tasks.SerializedSize() + 4
		})
	}
	return size
}

// MarshalBinary encodes the tree in the v1 wire format.
func (t *Tree) MarshalBinary() ([]byte, error) {
	return t.AppendBinaryV(make([]byte, 0, t.SerializedSizeV(WireV1)), WireV1)
}

// MarshalBinaryV encodes the tree in the requested wire format version.
func (t *Tree) MarshalBinaryV(version uint8) ([]byte, error) {
	return t.AppendBinaryV(make([]byte, 0, t.SerializedSizeV(version)), version)
}

// AppendBinary appends the v1 wire encoding to dst in place and returns
// the result; see AppendBinaryV.
func (t *Tree) AppendBinary(dst []byte) ([]byte, error) {
	return t.AppendBinaryV(dst, WireV1)
}

// AppendBinaryV appends the wire encoding under the given version to dst
// in place and returns the result. The destination is grown to the exact
// encoded size once and every field is written by index — no per-node
// allocation and no append bookkeeping per field. With a dst of sufficient
// capacity the encode performs no allocation at all.
func (t *Tree) AppendBinaryV(dst []byte, version uint8) ([]byte, error) {
	return t.appendBinary(dst, version, false)
}

// AppendBinaryDeltaV appends the delta-frame encoding ("STD2"/"STD3") of
// the tree to dst: the identical byte layout under the delta magic, for a
// tree whose labels are round-over-round XOR sets (see the delta-frame
// wire spec). Delta frames exist only for v2 and newer.
func (t *Tree) AppendBinaryDeltaV(dst []byte, version uint8) ([]byte, error) {
	if version < WireV2 {
		return nil, fmt.Errorf("trace: no delta frame format for wire version %d (v%d..v%d)", version, WireV2, MaxWireVersion)
	}
	return t.appendBinary(dst, version, true)
}

func (t *Tree) appendBinary(dst []byte, version uint8, delta bool) ([]byte, error) {
	if version < WireV1 || version > MaxWireVersion {
		return nil, fmt.Errorf("trace: unknown wire version %d (this build speaks v%d..v%d)", version, WireV1, MaxWireVersion)
	}
	base := len(dst)
	need := t.SerializedSizeV(version)
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	// The writer below fills every byte of [base, base+need) — padding
	// included; growing by reslice (not zero-fill) is safe because the
	// encoding is gapless.
	dst = dst[:base+need]
	o := base
	switch {
	case delta && version == WireV3:
		o += copy(dst[o:], magicD3[:])
	case delta:
		o += copy(dst[o:], magicD2[:])
	case version == WireV3:
		o += copy(dst[o:], magicV3[:])
	case version == WireV2:
		o += copy(dst[o:], magicV2[:])
	default:
		o += copy(dst[o:], magicV1[:])
	}
	binary.LittleEndian.PutUint32(dst[o:], uint32(t.NumTasks))
	o += 4
	var rec func(n *Node) error
	rec = func(n *Node) error {
		name := n.Frame.Function
		if len(name) > math.MaxUint16 {
			return fmt.Errorf("trace: function name %d bytes exceeds wire limit", len(name))
		}
		binary.LittleEndian.PutUint16(dst[o:], uint16(len(name)))
		o += 2
		o += copy(dst[o:], name)
		if version >= WireV2 {
			// Offsets are tracked relative to dst's base; the pad depends
			// only on o-base mod 8, and base is 0 mod 8 relative to itself.
			for p := pad8(o - base); p > 0; p-- {
				dst[o] = 0
				o++
			}
		}
		if version == WireV3 {
			o += bitvec.PutLabel3(dst[o:], n.Tasks)
		} else {
			o += n.Tasks.PutBinary(dst[o:])
		}
		binary.LittleEndian.PutUint32(dst[o:], uint32(len(n.Children)))
		o += 4
		if version >= WireV2 {
			binary.LittleEndian.PutUint32(dst[o:], 0)
			o += 4
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return nil, err
	}
	return dst, nil
}

// internPool recycles function-name intern tables across package-level
// UnmarshalBinary calls, so repeated decodes of trees sharing a function
// namespace (every gather of the same application) stop allocating name
// strings after the first. Tables are used exclusively by one decode at a
// time; the strings they hand out are immutable and safely shared.
var internPool = sync.Pool{New: func() any { t := newInternTable(); return &t }}

// UnmarshalBinary decodes a tree encoded by MarshalBinary or
// MarshalBinaryV, dispatching on the wire magic — both v1 and v2
// encodings are accepted. Labels are decoded into a fresh arena owned by
// the returned tree, and function names are interned across calls. For the
// filter hot path, which decodes and releases trees at steady state, use
// Codec.DecodeTree instead: it also recycles the label arena.
func UnmarshalBinary(b []byte) (*Tree, error) {
	names := internPool.Get().(*internTable)
	var arena bitvec.Arena
	t, _, err := decodeTree(b, names, &arena, &nodeBatch{}, nil, false, nil, false)
	internPool.Put(names)
	return t, err
}

// UnmarshalBinaryRemapped decodes like UnmarshalBinary but fuses the
// front-end remap into the decode: every label is pushed through the
// compiled permutation as it is materialized from the wire — one pass over
// each wire word, no second scattered-store sweep over a decoded tree.
// The wire tree's task width must equal r.SourceLen(); the returned tree
// spans r.Width() tasks. This is the hierarchical front end's final
// decode; Tree.RemapWith remains the fallback for trees already decoded
// by copying.
func UnmarshalBinaryRemapped(b []byte, r *bitvec.Remapper) (*Tree, error) {
	names := internPool.Get().(*internTable)
	var arena bitvec.Arena
	t, _, err := decodeTree(b, names, &arena, &nodeBatch{}, nil, false, r, false)
	internPool.Put(names)
	return t, err
}

// maxDecodeDepth bounds the recursion of decodeTree. Go grows goroutine
// stacks on demand, so deep recursion is a resource concern rather than a
// memory-safety one; the cap keeps an adversarial encoding from demanding
// an absurd stack. Input length bounds the depth too — every node consumes
// at least 14 bytes (2 name-length + 8 label header + 4 child count)
// before recursing — so the cap only bites inputs larger than ~900 KiB of
// pure nesting.
const maxDecodeDepth = 1 << 16

// treeDecoder is the shared recursive decoder behind UnmarshalBinary and
// the Codec decodes: names are interned through names, label headers and
// words are carved from arena (or alias the input in aliasing mode, or
// scatter through remap in fused-remap mode), and nodes come from the
// codec free list, then batch, then the shared node pool. A struct with a
// method rather than a recursive closure: no per-call closure allocation,
// direct recursive calls.
type treeDecoder struct {
	b        []byte
	pos      int
	numTasks int
	version  uint8
	names    *internTable
	arena    *bitvec.Arena
	batch    *nodeBatch
	codec    *Codec           // non-nil: draw nodes from the codec free list
	alias    bool             // zero-copy labels where alignment allows
	aliased  bool             // some label aliases b
	remap    *bitvec.Remapper // non-nil: labels remapped as they materialize
	delta    bool             // decoding a delta frame (XOR labels)
}

func decodeTree(b []byte, names *internTable, arena *bitvec.Arena, batch *nodeBatch, codec *Codec, alias bool, remap *bitvec.Remapper, delta bool) (*Tree, bool, error) {
	version, isDelta, err := SniffFrame(b)
	if err != nil {
		return nil, false, err
	}
	// Whole trees and delta frames must never be confused: a fold applied
	// to a whole tree (or a whole-tree merge fed XOR labels) silently
	// corrupts task sets, so the expectation is checked against the magic.
	if isDelta != delta {
		if delta {
			return nil, false, errors.New("trace: expected delta frame, got whole tree")
		}
		return nil, false, errors.New("trace: expected whole tree, got delta frame")
	}
	if len(b) < 8 {
		return nil, false, errors.New("trace: truncated header")
	}
	if !alias {
		// Label words can total at most len(b)/8; telling the arena up
		// front lets a fresh (one-shot) arena allocate to fit rather than
		// a default chunk, and costs a long-lived arena nothing once its
		// slabs cover the working set. An aliasing decode skips the hint:
		// most labels will view b, not the arena. (A square fused remap
		// preserves label width, so the bound holds there too.)
		arena.Grow(len(b) / 8)
	}
	d := treeDecoder{
		b:        b,
		pos:      8,
		numTasks: int(binary.LittleEndian.Uint32(b[4:8])),
		version:  version,
		names:    names,
		arena:    arena,
		batch:    batch,
		codec:    codec,
		alias:    alias,
		remap:    remap,
		delta:    delta,
	}
	if remap != nil && d.numTasks != remap.SourceLen() {
		return nil, false, fmt.Errorf("trace: remap has %d source bits for tree width %d", remap.SourceLen(), d.numTasks)
	}
	root, err := d.node(0)
	if err != nil {
		return nil, false, err
	}
	if d.pos != len(b) {
		return nil, false, fmt.Errorf("trace: %d trailing bytes", len(b)-d.pos)
	}
	var t *Tree
	if codec != nil {
		t = codec.getTree()
	} else {
		t = &Tree{}
	}
	t.NumTasks, t.Root = d.numTasks, root
	if remap != nil {
		t.NumTasks = remap.Width()
	}
	return t, d.aliased, nil
}

// pad consumes the zero bytes advancing the cursor to the next 8-byte
// boundary of the tree encoding, rejecting nonzero padding so the v2
// decode admits only canonical input.
func (d *treeDecoder) pad() error {
	p := pad8(d.pos)
	if len(d.b)-d.pos < p {
		return errors.New("trace: truncated padding")
	}
	for ; p > 0; p-- {
		if d.b[d.pos] != 0 {
			return errors.New("trace: nonzero padding byte")
		}
		d.pos++
	}
	return nil
}

func (d *treeDecoder) node(depth int) (*Node, error) {
	if depth > maxDecodeDepth {
		return nil, errors.New("trace: node nesting too deep")
	}
	b := d.b
	if len(b)-d.pos < 2 {
		return nil, errors.New("trace: truncated node header")
	}
	nameLen := int(binary.LittleEndian.Uint16(b[d.pos:]))
	d.pos += 2
	if len(b)-d.pos < nameLen {
		return nil, errors.New("trace: truncated node name")
	}
	name := d.names.intern(b[d.pos : d.pos+nameLen])
	d.pos += nameLen
	if d.version >= WireV2 {
		if err := d.pad(); err != nil {
			return nil, err
		}
	}
	// Label: in fused-remap mode the wire words scatter straight through
	// the permutation into arena storage; in aliasing mode the words view
	// the wire buffer directly when the host and this label's alignment
	// allow, and copy into the arena otherwise — byte-identical value
	// either way. The codec's alias hit/miss counters record which path
	// each label took, so a label that fails the alignment check is never
	// indistinguishable from an aliased one. Under v3 the same three paths
	// dispatch on the label's container kind; only the aliasing path may
	// keep the compressed representation (as a frozen *bitvec.Set view of
	// the pinned buffer) — the copying and remap-fused paths materialize
	// dense, so mutable consumers never meet a compressed label.
	var label bitvec.Label
	var used int
	var err error
	if d.version == WireV3 {
		switch {
		case d.remap != nil:
			label, used, err = d.arena.RemapLabel3(b[d.pos:], d.remap)
		case d.alias:
			var aliased bool
			label, used, aliased, err = d.arena.AliasLabel3(b[d.pos:])
			if err == nil && d.codec != nil {
				if aliased {
					d.codec.aliasHits++
				} else {
					d.codec.aliasMisses++
				}
			}
			d.aliased = d.aliased || aliased
		default:
			label, used, err = d.arena.UnmarshalLabel3(b[d.pos:])
		}
		if err == nil && d.codec != nil {
			d.codec.labelStats.note(b[d.pos+4], int64(used))
		}
	} else {
		switch {
		case d.remap != nil:
			label, used, err = d.arena.RemapBinary(b[d.pos:], d.remap)
		case d.alias:
			var aliased bool
			label, used, aliased, err = d.arena.AliasBinary(b[d.pos:])
			if err == nil && d.codec != nil {
				if aliased {
					d.codec.aliasHits++
				} else {
					d.codec.aliasMisses++
				}
			}
			d.aliased = d.aliased || aliased
		default:
			label, used, err = d.arena.UnmarshalBinary(b[d.pos:])
		}
	}
	if err != nil {
		return nil, err
	}
	d.pos += used
	if d.remap == nil && label.Len() != d.numTasks {
		return nil, fmt.Errorf("trace: label width %d != tree width %d", label.Len(), d.numTasks)
	}
	if len(b)-d.pos < 4 {
		return nil, errors.New("trace: truncated child count")
	}
	nc := int(binary.LittleEndian.Uint32(b[d.pos:]))
	d.pos += 4
	if d.version >= WireV2 {
		if err := d.pad(); err != nil {
			return nil, err
		}
	}
	if nc > len(b)-d.pos { // each child needs ≥1 byte; cheap sanity bound
		return nil, fmt.Errorf("trace: impossible child count %d", nc)
	}
	// Delta canonical form: a non-root node with an empty XOR label exists
	// only to route the path to changed descendants, so it must have
	// children; an empty-XOR leaf contributes nothing and is rejected (the
	// root is exempt — a root-only empty frame means "nothing changed").
	if d.delta && depth > 0 && nc == 0 && label.Empty() {
		return nil, errors.New("trace: non-canonical delta frame (empty-XOR leaf)")
	}
	var n *Node
	if d.codec != nil {
		n = d.codec.getNode(Frame{Function: name}, label)
	} else {
		n = d.batch.get(Frame{Function: name}, label)
	}
	if nc > 0 && cap(n.Children) < nc {
		n.Children = make([]*Node, 0, nc)
	}
	prev := ""
	for i := 0; i < nc; i++ {
		c, err := d.node(depth + 1)
		if err != nil {
			return nil, err
		}
		if i > 0 && c.Frame.Function <= prev {
			return nil, errors.New("trace: children not strictly sorted")
		}
		prev = c.Frame.Function
		n.Children = append(n.Children, c)
	}
	return n, nil
}
