package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format (little endian):
//
//	magic "STR1" (4 bytes)
//	u32 numTasks
//	node := u16 nameLen, name, label (bitvec binary), u32 childCount, node*
//
// The format is deliberately explicit about label width: in the original
// representation every label is full-job width, so the encoded size of a
// daemon's tree grows with the whole job even though only a few bits are
// set. That blowup — visible directly in SerializedSize — is the network
// pressure behind Figure 5.

var magic = [4]byte{'S', 'T', 'R', '1'}

// SerializedSize reports the exact size of MarshalBinary's output without
// allocating it.
func (t *Tree) SerializedSize() int {
	size := 4 + 4
	t.walk(func(n *Node, _ int) {
		size += 2 + len(n.Frame.Function) + n.Tasks.SerializedSize() + 4
	})
	return size
}

// MarshalBinary encodes the tree in the wire format above.
func (t *Tree) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, t.SerializedSize())
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.NumTasks))
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if len(n.Frame.Function) > math.MaxUint16 {
			return fmt.Errorf("trace: function name %d bytes exceeds wire limit", len(n.Frame.Function))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Frame.Function)))
		buf = append(buf, n.Frame.Function...)
		buf = n.Tasks.AppendBinary(buf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.Children)))
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return nil, err
	}
	return buf, nil
}

// UnmarshalBinary decodes a tree encoded by MarshalBinary.
func UnmarshalBinary(b []byte) (*Tree, error) {
	if len(b) < 8 {
		return nil, errors.New("trace: truncated header")
	}
	if [4]byte(b[0:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	numTasks := int(binary.LittleEndian.Uint32(b[4:8]))
	pos := 8

	// Depth-limited iterative decode guarding against malformed input.
	var decode func(depth int) (*Node, error)
	decode = func(depth int) (*Node, error) {
		if depth > 1<<16 {
			return nil, errors.New("trace: node nesting too deep")
		}
		if len(b)-pos < 2 {
			return nil, errors.New("trace: truncated node header")
		}
		nameLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if len(b)-pos < nameLen {
			return nil, errors.New("trace: truncated node name")
		}
		name := string(b[pos : pos+nameLen])
		pos += nameLen
		// Label.
		v, used, err := unmarshalLabel(b[pos:])
		if err != nil {
			return nil, err
		}
		pos += used
		if v.Len() != numTasks {
			return nil, fmt.Errorf("trace: label width %d != tree width %d", v.Len(), numTasks)
		}
		if len(b)-pos < 4 {
			return nil, errors.New("trace: truncated child count")
		}
		nc := int(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
		if nc > len(b)-pos { // each child needs ≥1 byte; cheap sanity bound
			return nil, fmt.Errorf("trace: impossible child count %d", nc)
		}
		n := newNode(Frame{Function: name}, v)
		prev := ""
		for i := 0; i < nc; i++ {
			c, err := decode(depth + 1)
			if err != nil {
				return nil, err
			}
			if i > 0 && c.Frame.Function <= prev {
				return nil, errors.New("trace: children not strictly sorted")
			}
			prev = c.Frame.Function
			n.Children = append(n.Children, c)
		}
		return n, nil
	}

	root, err := decode(0)
	if err != nil {
		return nil, err
	}
	if pos != len(b) {
		return nil, fmt.Errorf("trace: %d trailing bytes", len(b)-pos)
	}
	return &Tree{NumTasks: numTasks, Root: root}, nil
}
