package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"stat/internal/bitvec"
)

// Wire format (little endian):
//
//	magic "STR1" (4 bytes)
//	u32 numTasks
//	node := u16 nameLen, name, label (bitvec binary), u32 childCount, node*
//
// The format is deliberately explicit about label width: in the original
// representation every label is full-job width, so the encoded size of a
// daemon's tree grows with the whole job even though only a few bits are
// set. That blowup — visible directly in SerializedSize — is the network
// pressure behind Figure 5.

var magic = [4]byte{'S', 'T', 'R', '1'}

// SerializedSize reports the exact size of MarshalBinary's output without
// allocating it.
func (t *Tree) SerializedSize() int {
	size := 4 + 4
	t.walk(func(n *Node, _ int) {
		size += 2 + len(n.Frame.Function) + n.Tasks.SerializedSize() + 4
	})
	return size
}

// MarshalBinary encodes the tree in the wire format above.
func (t *Tree) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(make([]byte, 0, t.SerializedSize()))
}

// AppendBinary appends the wire encoding to dst in place and returns the
// result. The destination is grown to the exact encoded size once and every
// field is written by index — no per-node allocation and no append
// bookkeeping per field. With a dst of sufficient capacity the encode
// performs no allocation at all.
func (t *Tree) AppendBinary(dst []byte) ([]byte, error) {
	base := len(dst)
	need := t.SerializedSize()
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	// The writer below fills every byte of [base, base+need); growing by
	// reslice (not zero-fill) is safe because the encoding is gapless.
	dst = dst[:base+need]
	o := base
	o += copy(dst[o:], magic[:])
	binary.LittleEndian.PutUint32(dst[o:], uint32(t.NumTasks))
	o += 4
	var rec func(n *Node) error
	rec = func(n *Node) error {
		name := n.Frame.Function
		if len(name) > math.MaxUint16 {
			return fmt.Errorf("trace: function name %d bytes exceeds wire limit", len(name))
		}
		binary.LittleEndian.PutUint16(dst[o:], uint16(len(name)))
		o += 2
		o += copy(dst[o:], name)
		o += n.Tasks.PutBinary(dst[o:])
		binary.LittleEndian.PutUint32(dst[o:], uint32(len(n.Children)))
		o += 4
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return nil, err
	}
	return dst, nil
}

// internPool recycles function-name intern tables across package-level
// UnmarshalBinary calls, so repeated decodes of trees sharing a function
// namespace (every gather of the same application) stop allocating name
// strings after the first. Tables are used exclusively by one decode at a
// time; the strings they hand out are immutable and safely shared.
var internPool = sync.Pool{New: func() any { t := newInternTable(); return &t }}

// UnmarshalBinary decodes a tree encoded by MarshalBinary. Labels are
// decoded into a fresh arena owned by the returned tree, and function names
// are interned across calls. For the filter hot path, which decodes and
// releases trees at steady state, use Codec.DecodeTree instead: it also
// recycles the label arena.
func UnmarshalBinary(b []byte) (*Tree, error) {
	names := internPool.Get().(*internTable)
	var arena bitvec.Arena
	t, _, err := decodeTree(b, names, &arena, &nodeBatch{}, nil, false)
	internPool.Put(names)
	return t, err
}

// maxDecodeDepth bounds the recursion of decodeTree. Go grows goroutine
// stacks on demand, so deep recursion is a resource concern rather than a
// memory-safety one; the cap keeps an adversarial encoding from demanding
// an absurd stack. Input length bounds the depth too — every node consumes
// at least 14 bytes (2 name-length + 8 label header + 4 child count)
// before recursing — so the cap only bites inputs larger than ~900 KiB of
// pure nesting.
const maxDecodeDepth = 1 << 16

// treeDecoder is the shared recursive decoder behind UnmarshalBinary and
// the Codec decodes: names are interned through names, label headers and
// words are carved from arena (or alias the input in aliasing mode), and
// nodes come from the codec free list, then batch, then the shared node
// pool. A struct with a method rather than a recursive closure: no
// per-call closure allocation, direct recursive calls.
type treeDecoder struct {
	b        []byte
	pos      int
	numTasks int
	names    *internTable
	arena    *bitvec.Arena
	batch    *nodeBatch
	codec    *Codec // non-nil: draw nodes from the codec free list
	alias    bool   // zero-copy labels where alignment allows
	aliased  bool   // some label aliases b
}

func decodeTree(b []byte, names *internTable, arena *bitvec.Arena, batch *nodeBatch, codec *Codec, alias bool) (*Tree, bool, error) {
	if len(b) < 8 {
		return nil, false, errors.New("trace: truncated header")
	}
	if [4]byte(b[0:4]) != magic {
		return nil, false, errors.New("trace: bad magic")
	}
	if !alias {
		// Label words can total at most len(b)/8; telling the arena up
		// front lets a fresh (one-shot) arena allocate to fit rather than
		// a default chunk, and costs a long-lived arena nothing once its
		// slabs cover the working set. An aliasing decode skips the hint:
		// most labels will view b, not the arena.
		arena.Grow(len(b) / 8)
	}
	d := treeDecoder{
		b:        b,
		pos:      8,
		numTasks: int(binary.LittleEndian.Uint32(b[4:8])),
		names:    names,
		arena:    arena,
		batch:    batch,
		codec:    codec,
		alias:    alias,
	}
	root, err := d.node(0)
	if err != nil {
		return nil, false, err
	}
	if d.pos != len(b) {
		return nil, false, fmt.Errorf("trace: %d trailing bytes", len(b)-d.pos)
	}
	var t *Tree
	if codec != nil {
		t = codec.getTree()
	} else {
		t = &Tree{}
	}
	t.NumTasks, t.Root = d.numTasks, root
	return t, d.aliased, nil
}

func (d *treeDecoder) node(depth int) (*Node, error) {
	if depth > maxDecodeDepth {
		return nil, errors.New("trace: node nesting too deep")
	}
	b := d.b
	if len(b)-d.pos < 2 {
		return nil, errors.New("trace: truncated node header")
	}
	nameLen := int(binary.LittleEndian.Uint16(b[d.pos:]))
	d.pos += 2
	if len(b)-d.pos < nameLen {
		return nil, errors.New("trace: truncated node name")
	}
	name := d.names.intern(b[d.pos : d.pos+nameLen])
	d.pos += nameLen
	// Label: in aliasing mode the words view the wire buffer directly
	// when the host and this label's alignment allow, and copy into the
	// arena otherwise — byte-identical value either way.
	var v *bitvec.Vector
	var used int
	var err error
	if d.alias {
		var aliased bool
		v, used, aliased, err = d.arena.AliasBinary(b[d.pos:])
		d.aliased = d.aliased || aliased
	} else {
		v, used, err = d.arena.UnmarshalBinary(b[d.pos:])
	}
	if err != nil {
		return nil, err
	}
	d.pos += used
	if v.Len() != d.numTasks {
		return nil, fmt.Errorf("trace: label width %d != tree width %d", v.Len(), d.numTasks)
	}
	if len(b)-d.pos < 4 {
		return nil, errors.New("trace: truncated child count")
	}
	nc := int(binary.LittleEndian.Uint32(b[d.pos:]))
	d.pos += 4
	if nc > len(b)-d.pos { // each child needs ≥1 byte; cheap sanity bound
		return nil, fmt.Errorf("trace: impossible child count %d", nc)
	}
	var n *Node
	if d.codec != nil {
		n = d.codec.getNode(Frame{Function: name}, v)
	} else {
		n = d.batch.get(Frame{Function: name}, v)
	}
	if nc > 0 && cap(n.Children) < nc {
		n.Children = make([]*Node, 0, nc)
	}
	prev := ""
	for i := 0; i < nc; i++ {
		c, err := d.node(depth + 1)
		if err != nil {
			return nil, err
		}
		if i > 0 && c.Frame.Function <= prev {
			return nil, errors.New("trace: children not strictly sorted")
		}
		prev = c.Frame.Function
		n.Children = append(n.Children, c)
	}
	return n, nil
}
