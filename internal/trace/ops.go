package trace

import (
	"fmt"
	"sort"
	"strings"

	"stat/internal/bitvec"
)

// This file implements the front-end analysis operations STAT offers on a
// merged tree: focusing the view on a task subset (the user clicks an
// equivalence class and the tool re-renders only those tasks), extracting
// one task's current call path (what the heavyweight debugger will see on
// attach), and diffing two merged trees (comparing the application's state
// across two STAT invocations — how the authors confirmed a hang was not
// progressing).

// Focus returns a new tree restricted to the given task set: every label
// is intersected with the set and nodes whose labels become empty are
// dropped. The set's width must match the tree's task space.
func (t *Tree) Focus(tasks *bitvec.Vector) (*Tree, error) {
	if tasks.Len() != t.NumTasks {
		return nil, fmt.Errorf("trace: Focus set width %d, tree width %d", tasks.Len(), t.NumTasks)
	}
	out := NewTree(t.NumTasks)
	var rec func(src *Node) *Node
	rec = func(src *Node) *Node {
		label := src.Tasks.Clone()
		if err := label.IntersectWith(tasks); err != nil {
			panic(err) // widths checked above
		}
		if label.Empty() {
			return nil
		}
		n := &Node{Frame: src.Frame, Tasks: label}
		for _, c := range src.Children {
			if fc := rec(c); fc != nil {
				n.Children = append(n.Children, fc)
			}
		}
		return n
	}
	if root := rec(t.Root); root != nil {
		out.Root = root
	}
	return out, nil
}

// FocusTasks is a convenience wrapper taking rank numbers.
func (t *Tree) FocusTasks(ranks ...int) (*Tree, error) {
	v := bitvec.New(t.NumTasks)
	for _, r := range ranks {
		if r < 0 || r >= t.NumTasks {
			return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", r, t.NumTasks)
		}
		v.Set(r)
	}
	return t.Focus(v)
}

// PathTo returns the deepest call path containing the task — in a 2D
// tree, the task's sampled stack. The sentinel root is excluded. A task
// with no trace returns nil.
func (t *Tree) PathTo(task int) []string {
	if task < 0 || task >= t.NumTasks {
		return nil
	}
	var path []string
	n := t.Root
	if !n.Tasks.Get(task) {
		return nil
	}
	for {
		var next *Node
		for _, c := range n.Children {
			if c.Tasks.Get(task) {
				next = c
				break
			}
		}
		if next == nil {
			return path
		}
		path = append(path, next.Frame.Function)
		n = next
	}
}

// PathsTo returns every maximal call path the task appears on — in a 3D
// tree, the set of distinct stacks observed for the task across all
// samples. A path is maximal when the task is absent from every child of
// its terminal node. Paths are returned in tree (sorted) order.
func (t *Tree) PathsTo(task int) [][]string {
	if task < 0 || task >= t.NumTasks {
		return nil
	}
	var out [][]string
	var rec func(n *Node, path []string)
	rec = func(n *Node, path []string) {
		if !n.Tasks.Get(task) {
			return
		}
		terminal := true
		for _, c := range n.Children {
			if c.Tasks.Get(task) {
				terminal = false
				rec(c, append(path, c.Frame.Function))
			}
		}
		if terminal && len(path) > 0 {
			out = append(out, append([]string(nil), path...))
		}
	}
	rec(t.Root, nil)
	return out
}

// DiffEntry describes one divergence between two trees.
type DiffEntry struct {
	// Path is the call path of the divergent node.
	Path []string
	// InA and InB are the member counts at that node in each tree; one of
	// them is zero when the path exists in only one tree.
	InA, InB int
	// Moved lists tasks present at this path in exactly one of the trees
	// (ascending).
	Moved []int
}

func (d DiffEntry) String() string {
	return fmt.Sprintf("%s: %d vs %d tasks (%d moved)",
		strings.Join(d.Path, " > "), d.InA, d.InB, len(d.Moved))
}

// Diff compares two trees over the same task space and returns every node
// where membership differs, sorted by path. Two consecutive STAT gathers
// of a healthy application differ in the progress-engine leaves; a hung
// application diffs empty — exactly the "is it actually hung?" check.
func Diff(a, b *Tree) ([]DiffEntry, error) {
	if a.NumTasks != b.NumTasks {
		return nil, fmt.Errorf("trace: Diff task spaces %d vs %d", a.NumTasks, b.NumTasks)
	}
	var out []DiffEntry
	// zero stands in for the label of a node absent from one tree; it is
	// only ever read.
	zero := bitvec.New(a.NumTasks)
	var rec func(na, nb *Node, path []string)
	rec = func(na, nb *Node, path []string) {
		var ta, tb bitvec.Label
		switch {
		case na != nil && nb != nil:
			ta, tb = na.Tasks, nb.Tasks
		case na != nil:
			ta, tb = na.Tasks, zero
		default:
			ta, tb = zero, nb.Tasks
		}
		if !bitvec.Equal(ta, tb) && len(path) > 0 {
			sym := ta.Clone()
			if err := sym.AndNotLabel(tb); err != nil {
				panic(err)
			}
			other := tb.Clone()
			if err := other.AndNotLabel(ta); err != nil {
				panic(err)
			}
			// sym and other are disjoint and each sorted: merge them
			// rather than re-sorting the concatenation.
			ma, mb := sym.Members(), other.Members()
			moved := make([]int, 0, len(ma)+len(mb))
			for len(ma) > 0 && len(mb) > 0 {
				if ma[0] < mb[0] {
					moved = append(moved, ma[0])
					ma = ma[1:]
				} else {
					moved = append(moved, mb[0])
					mb = mb[1:]
				}
			}
			moved = append(append(moved, ma...), mb...)
			out = append(out, DiffEntry{
				Path:  append([]string(nil), path...),
				InA:   ta.Count(),
				InB:   tb.Count(),
				Moved: moved,
			})
		}
		// Union of child names via a two-pointer walk over the sorted
		// Children slices — no name set, no sort.
		var ac, bc []*Node
		if na != nil {
			ac = na.Children
		}
		if nb != nil {
			bc = nb.Children
		}
		ia, ib := 0, 0
		for ia < len(ac) || ib < len(bc) {
			var ca, cb *Node
			switch {
			case ib >= len(bc) || (ia < len(ac) && ac[ia].Frame.Function < bc[ib].Frame.Function):
				ca = ac[ia]
				ia++
			case ia >= len(ac) || bc[ib].Frame.Function < ac[ia].Frame.Function:
				cb = bc[ib]
				ib++
			default:
				ca, cb = ac[ia], bc[ib]
				ia++
				ib++
			}
			name := ""
			if ca != nil {
				name = ca.Frame.Function
			} else {
				name = cb.Frame.Function
			}
			rec(ca, cb, append(path, name))
		}
	}
	rec(a.Root, b.Root, nil)
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Path, "/") < strings.Join(out[j].Path, "/")
	})
	return out, nil
}

// Stable reports the tasks whose call paths are identical in both trees —
// in STAT's usage, tasks that made no progress between two gathers (hung
// suspects when the application should be advancing).
func Stable(a, b *Tree) (*bitvec.Vector, error) {
	if a.NumTasks != b.NumTasks {
		return nil, fmt.Errorf("trace: Stable task spaces %d vs %d", a.NumTasks, b.NumTasks)
	}
	out := bitvec.New(a.NumTasks)
	for task := 0; task < a.NumTasks; task++ {
		pa := a.PathTo(task)
		pb := b.PathTo(task)
		if pa == nil || pb == nil {
			continue
		}
		if len(pa) == len(pb) && strings.Join(pa, "\x00") == strings.Join(pb, "\x00") {
			out.Set(task)
		}
	}
	return out, nil
}
