package trace

import (
	"stat/internal/bitvec"
)

// This file is the emission surface external tree builders use — today the
// batched sampling engine (internal/sample), which accumulates a gather's
// stacks in its own PC-keyed trie and then emits a Tree directly, without
// ever materializing per-sample Trace values or folding through Tree.Add.
//
// An emitted tree may share its labels with the emitter: NewPooledNode
// takes the label by reference, and Release nils the pointer without
// recycling the vector's storage, so an engine that owns its labels
// (resetting them in place between rounds) hands them to the tree for the
// encode and gets them back intact when the tree is released. Such a tree
// follows the aliasing-tree discipline: it is read-only, and it must die
// before the emitter reuses the labels.

// NewPooledNode returns a node drawn from the shared node pool, carrying
// the given frame and label. It is the external-builder counterpart of the
// pooled allocation every decode and merge path in this package uses:
// nodes released by Tree.Release (on trees without a codec owner) cycle
// back to the same pool with their Children capacity warm, so a builder
// that emits and releases a tree per gather allocates no nodes at steady
// state. Children must be appended in sorted Frame.Function order — the
// tree invariant every consumer relies on.
func NewPooledNode(frame Frame, tasks bitvec.Label) *Node {
	return newNode(frame, tasks)
}

// AdoptRoot points a reusable tree header at an externally assembled node
// structure, clearing the release guard. The header must not be live: only
// a zero Tree or one already passed through Release may adopt a new root
// (adopting over live nodes would leak them past the pool). This is how a
// long-lived emitter cycles the same two Tree headers through
// emit→encode→Release every round instead of allocating headers per
// gather.
func (t *Tree) AdoptRoot(numTasks int, root *Node) {
	if t.Root != nil && !t.released {
		panic("trace: AdoptRoot on a live tree")
	}
	if numTasks < 0 {
		panic("trace: negative task-space size")
	}
	*t = Tree{NumTasks: numTasks, Root: root}
}
