package trace_test

import (
	"bytes"
	"testing"

	"stat/internal/trace"
)

// corpusTree builds a small representative tree for fuzz seeds.
func corpusTree() *trace.Tree {
	t := trace.NewTree(6)
	t.AddStack(0, "main", "solver", "mpi_waitall")
	t.AddStack(1, "main", "solver", "compute")
	t.AddStack(5, "main", "io", "write")
	return t
}

// FuzzUnmarshalBinary feeds arbitrary bytes to the wire decoder: it must
// never panic, and anything it accepts must re-marshal to the identical
// byte string (the decoder admits only canonical encodings).
func FuzzUnmarshalBinary(f *testing.F) {
	valid, err := corpusTree().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                 // truncated mid-node
	f.Add(append([]byte("XTR1"), valid[4:]...)) // bad magic
	f.Add(append(bytes.Clone(valid), 0xFF))     // trailing garbage
	corrupted := bytes.Clone(valid)
	corrupted[9] ^= 0x40 // flip a width bit
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := trace.UnmarshalBinary(b)
		if err != nil {
			return
		}
		enc, err := tr.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded tree failed to re-marshal: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", b, enc)
		}
		if got := tr.SerializedSize(); got != len(enc) {
			t.Fatalf("SerializedSize %d != encoded %d", got, len(enc))
		}
	})
}

// FuzzTreeRoundTrip builds a tree from a fuzzer-chosen population and
// checks the wire format reproduces it exactly. ops is consumed three
// bytes at a time: task selector, stack depth, and a path seed walking a
// small function alphabet.
func FuzzTreeRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{0, 3, 7, 2, 2, 9})
	f.Add(uint8(1), []byte{0, 1, 0})
	f.Add(uint8(255), []byte{})
	f.Fuzz(func(t *testing.T, width uint8, ops []byte) {
		if width == 0 {
			width = 1
		}
		funcs := []string{"main", "a", "bb", "ccc", "d", ""}
		tr := trace.NewTree(int(width))
		for i := 0; i+2 < len(ops); i += 3 {
			task := int(ops[i]) % int(width)
			depth := int(ops[i+1]) % 8
			pathSeed := int(ops[i+2])
			stack := make([]string, 0, depth)
			for d := 0; d < depth; d++ {
				stack = append(stack, funcs[(pathSeed+d*5)%len(funcs)])
			}
			tr.AddStack(task, stack...)
		}
		enc, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := trace.UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !tr.Equal(dec) {
			t.Fatalf("round trip changed the tree:\nin:\n%s\nout:\n%s", tr, dec)
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("round-tripped tree invalid: %v", err)
		}
	})
}
