package trace_test

import (
	"bytes"
	"testing"

	"stat/internal/trace"
)

// corpusTree builds a small representative tree for fuzz seeds.
func corpusTree() *trace.Tree {
	t := trace.NewTree(6)
	t.AddStack(0, "main", "solver", "mpi_waitall")
	t.AddStack(1, "main", "solver", "compute")
	t.AddStack(5, "main", "io", "write")
	return t
}

// FuzzUnmarshalBinary feeds arbitrary bytes to the version-dispatched
// wire decoder: it must never panic, and anything it accepts — v1, v2
// or v3 magic — must re-marshal, under the version it was encoded in, to
// the identical byte string (each decoder admits only canonical
// encodings of its version).
func FuzzUnmarshalBinary(f *testing.F) {
	valid, err := corpusTree().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	validV2, err := corpusTree().MarshalBinaryV(trace.WireV2)
	if err != nil {
		f.Fatal(err)
	}
	validV3, err := corpusTree().MarshalBinaryV(trace.WireV3)
	if err != nil {
		f.Fatal(err)
	}
	wide := trace.NewTree(256) // wide enough that run labels win
	for task := 0; task < 256; task++ {
		wide.AddStack(task, "main", "solver")
	}
	wideV3, err := wide.MarshalBinaryV(trace.WireV3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(validV2)
	f.Add(validV3)
	f.Add(wideV3)
	f.Add(valid[:len(valid)/2])                 // truncated mid-node
	f.Add(validV2[:len(validV2)/2])             // truncated mid-node, v2
	f.Add(validV3[:len(validV3)/2])             // truncated mid-node, v3
	f.Add(append([]byte("XTR1"), valid[4:]...)) // bad magic
	f.Add(append(bytes.Clone(valid), 0xFF))     // trailing garbage
	f.Add(append(bytes.Clone(validV2), 0xFF))   // trailing garbage after v2
	f.Add(append(bytes.Clone(validV3), 0xFF))   // trailing garbage after v3
	corrupted := bytes.Clone(valid)
	corrupted[9] ^= 0x40 // flip a width bit
	f.Add(corrupted)
	crossed := bytes.Clone(validV2)
	copy(crossed, "STR1") // v2 layout under v1 magic
	f.Add(crossed)
	crossed32 := bytes.Clone(validV3)
	copy(crossed32, "STR2") // v3 layout under v2 magic
	f.Add(crossed32)
	dirtyPad := bytes.Clone(validV2)
	dirtyPad[10] = 0x55 // root name padding must be zero
	f.Add(dirtyPad)
	// v3 label damage at the root: the label3 header sits at offset 16
	// (kind byte 20, count u32 24), its payload at 32.
	badKind := bytes.Clone(wideV3)
	badKind[20] = 3
	f.Add(badKind)
	nonCanonical := bytes.Clone(wideV3)
	nonCanonical[20] = 2 // full-population run rewritten as "array"
	f.Add(nonCanonical)
	overlap := bytes.Clone(wideV3)
	overlap[24] = 2 // promise two extents where one run's bytes lie
	f.Add(overlap)
	dirtyKindPad := bytes.Clone(wideV3)
	dirtyKindPad[21] = 0xAA // the three zero bytes after kind
	f.Add(dirtyKindPad)
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := trace.UnmarshalBinary(b)
		if err != nil {
			return
		}
		version, err := trace.SniffWireVersion(b)
		if err != nil {
			t.Fatalf("accepted input has no sniffable version: %v", err)
		}
		enc, err := tr.MarshalBinaryV(version)
		if err != nil {
			t.Fatalf("decoded tree failed to re-marshal: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not canonical (v%d):\nin  %x\nout %x", version, b, enc)
		}
		if got := tr.SerializedSizeV(version); got != len(enc) {
			t.Fatalf("SerializedSizeV(%d) %d != encoded %d", version, got, len(enc))
		}
	})
}

// FuzzTreeRoundTrip builds a tree from a fuzzer-chosen population and
// checks the wire format reproduces it exactly. ops is consumed three
// bytes at a time: task selector, stack depth, and a path seed walking a
// small function alphabet.
func FuzzTreeRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{0, 3, 7, 2, 2, 9})
	f.Add(uint8(1), []byte{0, 1, 0})
	f.Add(uint8(255), []byte{})
	f.Fuzz(func(t *testing.T, width uint8, ops []byte) {
		if width == 0 {
			width = 1
		}
		funcs := []string{"main", "a", "bb", "ccc", "d", ""}
		tr := trace.NewTree(int(width))
		for i := 0; i+2 < len(ops); i += 3 {
			task := int(ops[i]) % int(width)
			depth := int(ops[i+1]) % 8
			pathSeed := int(ops[i+2])
			stack := make([]string, 0, depth)
			for d := 0; d < depth; d++ {
				stack = append(stack, funcs[(pathSeed+d*5)%len(funcs)])
			}
			tr.AddStack(task, stack...)
		}
		enc, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := trace.UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !tr.Equal(dec) {
			t.Fatalf("round trip changed the tree:\nin:\n%s\nout:\n%s", tr, dec)
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("round-tripped tree invalid: %v", err)
		}
	})
}

// countPin counts retain/release pairs for the aliasing decoder.
type countPin struct{ n int }

func (p *countPin) Retain()  { p.n++ }
func (p *countPin) Release() { p.n-- }

// deltaCorpusFrame encodes a representative delta frame: one changed
// subtree plus untouched siblings elided, root carried with an empty XOR.
func deltaCorpusFrame(f *testing.F, version uint8) []byte {
	d := trace.NewTree(6)
	d.AddStack(1, "main", "solver", "mpi_waitall")
	d.AddStack(1, "main", "solver", "compute")
	enc, err := d.AppendBinaryDeltaV(nil, version)
	if err != nil {
		f.Fatal(err)
	}
	return enc
}

// FuzzDeltaDecode feeds arbitrary bytes to the delta-frame decoder: it
// must never panic; the copying (UnmarshalDelta), pooled-codec
// (DecodeDelta) and aliasing (DecodeDeltaAliasing) decoders must agree on
// accept/reject and on the decoded tree; and anything accepted must
// re-marshal, under the version it was encoded in, to the identical byte
// string — each decoder admits only canonical delta encodings, including
// the delta-specific rule that a non-root node with an empty XOR label
// must carry children (it exists only to route descent).
func FuzzDeltaDecode(f *testing.F) {
	v2 := deltaCorpusFrame(f, trace.WireV2)
	v3 := deltaCorpusFrame(f, trace.WireV3)
	whole, err := corpusTree().MarshalBinaryV(trace.WireV2)
	if err != nil {
		f.Fatal(err)
	}
	// The canonical "nothing changed" frame: a root-only tree, empty XOR.
	empty, err := trace.NewTree(6).AppendBinaryDeltaV(nil, trace.WireV2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(v2)
	f.Add(v3)
	f.Add(empty)
	f.Add(whole)                         // whole-tree magic must be rejected here
	f.Add(v2[:len(v2)/2])                // truncated mid-node
	f.Add(v3[:len(v3)/2])                // truncated mid-node, v3
	f.Add(append(bytes.Clone(v2), 0xFF)) // trailing garbage
	crossed := bytes.Clone(v2)
	copy(crossed, "STD3") // v2 layout under v3 magic
	f.Add(crossed)
	corrupt := bytes.Clone(v2)
	corrupt[9] ^= 0x40 // flip a width bit
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := trace.UnmarshalDelta(b)
		codec := trace.NewCodec()
		cd, cerr := codec.DecodeDelta(b)
		pin := &countPin{}
		ad, aerr := codec.DecodeDeltaAliasing(b, pin)
		if err != nil {
			if cerr == nil || aerr == nil {
				t.Fatalf("decoders disagree on rejection: copy=%v codec=%v alias=%v", err, cerr, aerr)
			}
			return
		}
		if cerr != nil || aerr != nil {
			t.Fatalf("decoders disagree on acceptance: codec=%v alias=%v", cerr, aerr)
		}
		if !d.Equal(cd) || !d.Equal(ad) {
			t.Fatal("decoders disagree on the decoded delta frame")
		}
		version, isDelta, err := trace.SniffFrame(b)
		if err != nil || !isDelta {
			t.Fatalf("accepted delta frame does not sniff as one: v%d delta=%v err=%v", version, isDelta, err)
		}
		enc, err := d.AppendBinaryDeltaV(nil, version)
		if err != nil {
			t.Fatalf("decoded delta failed to re-marshal: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("delta decode/encode not canonical (v%d):\nin  %x\nout %x", version, b, enc)
		}
		// Whole-tree decoders must reject the frame kind symmetrically.
		if _, err := trace.UnmarshalBinary(b); err == nil {
			t.Fatal("whole-tree decoder accepted a delta frame")
		}
		cd.Release()
		ad.Release()
		if pin.n != 0 {
			t.Fatalf("aliasing decode leaked %d pin retains after release", pin.n)
		}
	})
}
