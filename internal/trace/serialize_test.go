package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	tr := NewTree(10)
	tr.AddStack(0, "main", "PMPI_Barrier", "poll")
	tr.AddStack(1, "main", "do_SendOrStall")
	tr.AddStack(9, "main", "PMPI_Waitall", "progress", "poll")

	b, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != tr.SerializedSize() {
		t.Errorf("len = %d, SerializedSize = %d", len(b), tr.SerializedSize())
	}
	got, err := UnmarshalBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got, tr)
	}
}

func TestMarshalEmptyTree(t *testing.T) {
	tr := NewTree(5)
	b, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) || got.NumTasks != 5 || got.NodeCount() != 0 {
		t.Errorf("empty tree round trip: %v", got)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	tr := NewTree(4)
	tr.AddStack(0, "main", "x")
	b, _ := tr.MarshalBinary()

	cases := map[string]func([]byte) []byte{
		"empty":      func([]byte) []byte { return nil },
		"bad magic":  func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c },
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":   func(b []byte) []byte { return append(clone(b), 0xFF) },
		"wide label": func(b []byte) []byte { c := clone(b); c[4] = 99; return c }, // numTasks no longer matches labels
	}
	for name, corrupt := range cases {
		if _, err := UnmarshalBinary(corrupt(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnmarshalRejectsHugeChildCount(t *testing.T) {
	tr := NewTree(1)
	tr.AddStack(0, "main")
	b, _ := tr.MarshalBinary()
	// The root's child count lives right after magic+numTasks+root node
	// header; instead of hunting the offset, just flip every u32-aligned
	// position to a huge value and require that none of the mutations is
	// accepted silently as valid.
	accepted := 0
	for off := 8; off+4 <= len(b); off++ {
		c := clone(b)
		c[off], c[off+1], c[off+2], c[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
		if got, err := UnmarshalBinary(c); err == nil {
			// A mutation may legitimately decode if it hit label bits; it
			// must then still be a structurally valid tree.
			if got.Validate() != nil {
				accepted++
			}
		}
	}
	if accepted > 0 {
		t.Errorf("%d corrupt mutations decoded into invalid trees", accepted)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestSerializedSizeScalesWithWidth(t *testing.T) {
	// Same stacks, 100x task-space width → much larger payload. This is the
	// measurable core of Section V.
	small := NewTree(64)
	small.AddStack(0, "main", "a", "b")
	big := NewTree(6400)
	big.AddStack(0, "main", "a", "b")
	if big.SerializedSize() < 10*small.SerializedSize() {
		t.Errorf("wide tree %dB not ≫ narrow tree %dB",
			big.SerializedSize(), small.SerializedSize())
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 1+r.Intn(50))
		b, err := tr.MarshalBinary()
		if err != nil || len(b) != tr.SerializedSize() {
			return false
		}
		got, err := UnmarshalBinary(b)
		return err == nil && got.Equal(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	tr := NewTree(1024)
	for task := 0; task < 1024; task++ {
		switch task {
		case 1:
			tr.AddStack(task, "_start_blrts", "main", "do_SendOrStall")
		case 2:
			tr.AddStack(task, "_start_blrts", "main", "PMPI_Waitall")
		default:
			tr.AddStack(task, "_start_blrts", "main", "PMPI_Barrier")
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph stat",
		`"_start_blrts"`,
		`"do_SendOrStall"`,
		"1022:[0,3-1023]", // the Figure 1 edge-label style
		"1:[1]",
		"1:[2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTElidesLongRanges(t *testing.T) {
	tr := NewTree(4096)
	for task := 0; task < 4096; task += 2 { // every other task: long range list
		tr.AddStack(task, "main", "poll")
	}
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",...]") {
		t.Errorf("long range list not elided:\n%s", buf.String())
	}
}
