package trace

import (
	"stat/internal/bitvec"
)

// internLimit and internByteLimit cap the intern table by entry count and
// by total retained string bytes. Function namespaces are small and stable
// in practice; the caps only exist so a pathological stream of distinct
// names (fuzzing, a hostile peer — the wire allows 64 KiB per name) cannot
// grow a pooled table without bound. On overflow the table is cleared, not
// abandoned.
const (
	internLimit     = 1 << 16
	internByteLimit = 4 << 20
)

// internTable deduplicates function-name strings. Looking up a []byte key
// against the map allocates nothing on a hit, so at steady state — names
// repeat across every sibling subtree of a reduction — decoding a node's
// name is a map probe, not a string allocation.
type internTable struct {
	m     map[string]string
	bytes int
}

func newInternTable() internTable {
	return internTable{m: make(map[string]string)}
}

func (t *internTable) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	if len(t.m) >= internLimit || t.bytes >= internByteLimit {
		clear(t.m)
		t.bytes = 0
	}
	s := string(b)
	t.m[s] = s
	t.bytes += len(s)
	return s
}

// Pin is the retain/release surface of a leased wire buffer (a
// tbon.Lease satisfies it). An aliasing decode retains the pin once per
// tree whose labels view the buffer and releases it when that tree is
// released, so the buffer provably outlives every label aliasing it.
type Pin interface {
	Retain()
	Release()
}

// nodeFreeListCap and treeFreeListCap bound the codec free lists; beyond
// them, released nodes and trees fall back to the shared pool / garbage
// collector so one giant decode cannot pin memory on a codec that then
// handles small packets forever.
const (
	nodeFreeListCap = 1 << 16
	treeFreeListCap = 64
)

// Codec bundles the reusable allocation state of wire decoding: an intern
// table for function names, a bitvec.Arena supplying decoded label
// storage, and free lists of recycled nodes and tree headers. A TBON
// merge filter decodes its children, merges, encodes and releases
// everything before returning; with a Codec every side of that cycle
// reuses the same arena slabs, name strings, nodes and tree structs every
// invocation instead of reallocating per packet — Release fills the free
// lists, DecodeTree and MergeConcat drain them, with no per-node trip
// through the shared sync.Pool and its synchronization. (The encode side
// needs no state: Tree.AppendBinary writes into any caller buffer,
// allocation-free when the buffer is pre-sized.)
//
// Lifecycle: every tree returned by DecodeTree, DecodeTreeAliasing or
// MergeConcat borrows the codec's arena. Tree.Release returns the borrow;
// when the last outstanding tree is released the arena recycles
// automatically. The caller must release every such tree before the codec
// may be shared onward (pooled, reused by another goroutine): Live
// reports the outstanding count.
//
// Concurrency: a Codec is single-goroutine state. Decoded trees may be read
// concurrently like any other tree, but DecodeTree, MergeConcat and the
// Release calls of the codec's trees must all happen on one goroutine at
// a time. Concurrent filter workers each take their own Codec (sync.Pool
// is the intended sharing mechanism).
type Codec struct {
	names internTable
	arena bitvec.Arena
	live  int
	nodes []*Node // free list: filled by Tree.Release, drained by decodes and merges
	trees []*Tree // free list of recycled tree headers
	cm    concatMerger
	// aliasHits / aliasMisses count labels DecodeTreeAliasing aliased in
	// place versus copied because the alignment check failed. Single-
	// goroutine like the rest of the codec; see AliasStats.
	aliasHits   int64
	aliasMisses int64
	// labelStats accumulates the v3 container mix this codec decoded;
	// see LabelStats.
	labelStats LabelStats
}

// LabelStats is the per-container-kind breakdown of the v3 labels a
// codec has decoded: how many labels arrived as each container and the
// wire bytes (label3 header included) each kind contributed. All zero on
// a codec that has only seen v1/v2 streams. Together with AliasStats it
// answers both halves of the v3 story: how much the adaptive containers
// compressed the stream, and whether the decode stayed zero-copy.
type LabelStats struct {
	Dense, Run, Array                int64
	DenseBytes, RunBytes, ArrayBytes int64
}

// note records one decoded v3 label from its wire kind byte.
func (s *LabelStats) note(kind byte, bytes int64) {
	switch kind {
	case 0:
		s.Dense++
		s.DenseBytes += bytes
	case 1:
		s.Run++
		s.RunBytes += bytes
	case 2:
		s.Array++
		s.ArrayBytes += bytes
	}
}

// Add accumulates o into s; the aggregation step tools use to fold
// per-codec stats into a session total.
func (s *LabelStats) Add(o LabelStats) {
	s.Dense += o.Dense
	s.Run += o.Run
	s.Array += o.Array
	s.DenseBytes += o.DenseBytes
	s.RunBytes += o.RunBytes
	s.ArrayBytes += o.ArrayBytes
}

// Sub returns s minus o — the delta between two snapshots of one codec.
func (s LabelStats) Sub(o LabelStats) LabelStats {
	return LabelStats{
		Dense: s.Dense - o.Dense, Run: s.Run - o.Run, Array: s.Array - o.Array,
		DenseBytes: s.DenseBytes - o.DenseBytes, RunBytes: s.RunBytes - o.RunBytes, ArrayBytes: s.ArrayBytes - o.ArrayBytes,
	}
}

// Labels reports the total container count across kinds.
func (s LabelStats) Labels() int64 { return s.Dense + s.Run + s.Array }

// Bytes reports the total label wire bytes across kinds.
func (s LabelStats) Bytes() int64 { return s.DenseBytes + s.RunBytes + s.ArrayBytes }

// LabelStats reports the v3 container mix decoded by this codec since
// creation. Counters accumulate for the life of the codec, like
// AliasStats.
func (c *Codec) LabelStats() LabelStats { return c.labelStats }

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	c := &Codec{names: newInternTable()}
	c.cm.codec = c
	return c
}

// DecodeTree decodes a tree encoded by Tree.MarshalBinary or
// Tree.MarshalBinaryV, dispatching on the wire magic (v1 and v2 alike).
// The tree's labels live in the codec's arena until the tree is released;
// see the Codec lifecycle notes.
func (c *Codec) DecodeTree(b []byte) (*Tree, error) {
	return c.decode(b, nil, false)
}

// DecodeTreeAliasing decodes like DecodeTree but zero-copy where
// possible: on little-endian hosts, labels whose wire bytes land 8-byte
// aligned become read-only views of b instead of copies (the rest copy
// into the arena as usual — the decoded value is identical either way).
// When any label aliases b, the codec retains pin once and the returned
// tree releases it from Tree.Release, so the leased packet buffer stays
// alive — and, under a budgeted reduction engine, stays charged — until
// the tree is dead. The caller must keep b immutable and unrecycled for
// the tree's lifetime; that is exactly what the pin enforces when b is a
// tbon.Lease payload.
//
// The returned tree must be treated as read-only: mutating an aliased
// label would corrupt the wire buffer. Merging it with MergeConcat (which
// only reads its inputs) and encoding it are safe; the in-place MergeUnion
// is not — original-mode filters use the copying DecodeTree.
func (c *Codec) DecodeTreeAliasing(b []byte, pin Pin) (*Tree, error) {
	return c.decode(b, pin, false)
}

// DecodeDelta decodes a delta frame ("STD2"/"STD3") through the codec,
// exactly as DecodeTree decodes a whole tree: labels (here XOR sets) live
// in the codec's arena until the tree is released. Whole-tree magics are
// rejected — see the delta-frame wire spec in serialize.go.
func (c *Codec) DecodeDelta(b []byte) (*Tree, error) {
	return c.decode(b, nil, true)
}

// DecodeDeltaAliasing decodes a delta frame zero-copy where possible,
// with the same pinning contract as DecodeTreeAliasing. The interior
// delta merge uses it: XOR labels concat exactly like task-set labels, so
// the filter cycle over delta frames is byte-for-byte the whole-tree
// cycle on smaller inputs.
func (c *Codec) DecodeDeltaAliasing(b []byte, pin Pin) (*Tree, error) {
	return c.decode(b, pin, true)
}

// AliasStats reports how many labels this codec's aliasing decodes viewed
// in place (hits) versus copied into the arena because the label's wire
// bytes failed the word-alignment check (misses). On a v2 (STR2) stream
// landing in an 8-aligned buffer the miss count stays zero; a nonzero
// count under v2 means the enclosing framing broke the alignment
// guarantee. Counters accumulate for the life of the codec.
func (c *Codec) AliasStats() (hits, misses int64) { return c.aliasHits, c.aliasMisses }

func (c *Codec) decode(b []byte, pin Pin, delta bool) (*Tree, error) {
	t, aliased, err := decodeTree(b, &c.names, &c.arena, nil, c, pin != nil, nil, delta)
	if err != nil {
		// A failed decode may have carved label storage before erroring;
		// reclaim it now if no live tree pins the arena. (Nodes built
		// before the error are dropped to the garbage collector.)
		if c.live == 0 {
			c.arena.Reset()
		}
		return nil, err
	}
	c.live++
	t.owner = c
	if aliased {
		pin.Retain()
		t.pin = pin
	}
	return t, nil
}

// MergeConcat merges trees under the hierarchical representation exactly
// like the package-level MergeConcat, but the output tree borrows the
// codec: labels are carved from the codec's arena, nodes and the tree
// header come from its free lists, and the tree must be Released (on the
// codec's goroutine) like a decoded tree. At steady state — the
// decode→merge→encode filter cycle on a warm codec — the merge performs
// no heap allocation at all. Inputs are only read; merging aliasing
// (read-only) trees is safe.
func (c *Codec) MergeConcat(trees ...*Tree) *Tree {
	total := 0
	if cap(c.cm.offsets) < len(trees) {
		c.cm.offsets = make([]int, len(trees))
	}
	offsets := c.cm.offsets[:len(trees)]
	for i, tr := range trees {
		offsets[i] = total
		total += tr.NumTasks
	}
	c.cm.offsets, c.cm.total = offsets, total
	if cap(c.cm.roots) < len(trees) {
		c.cm.roots = make([]*Node, len(trees))
	}
	roots := c.cm.roots[:len(trees)]
	for i, tr := range trees {
		roots[i] = tr.Root
	}
	root := c.cm.merge(roots, 0)
	t := c.getTree()
	t.NumTasks, t.Root = total, root
	c.live++
	t.owner = c
	return t
}

// Live reports how many trees handed out by this codec have not yet been
// released. The codec must not be handed to another user while Live is
// nonzero.
func (c *Codec) Live() int { return c.live }

func (c *Codec) noteRelease() {
	c.live--
	if c.live == 0 {
		c.arena.Reset()
	}
}

// getNode pops a recycled node from the codec free list, falling back to
// the shared pool. Free-list nodes, like pooled ones, keep their Children
// backing arrays, so steady-state decodes regrow nothing.
func (c *Codec) getNode(frame Frame, tasks bitvec.Label) *Node {
	if n := len(c.nodes); n > 0 {
		nd := c.nodes[n-1]
		c.nodes[n-1] = nil
		c.nodes = c.nodes[:n-1]
		nd.Frame = frame
		nd.Tasks = tasks
		return nd
	}
	return newNode(frame, tasks)
}

// getTree pops a recycled tree header, reset for reuse.
func (c *Codec) getTree() *Tree {
	if n := len(c.trees); n > 0 {
		t := c.trees[n-1]
		c.trees[n-1] = nil
		c.trees = c.trees[:n-1]
		*t = Tree{}
		return t
	}
	return &Tree{}
}

func (c *Codec) putTree(t *Tree) {
	if len(c.trees) < treeFreeListCap {
		c.trees = append(c.trees, t)
	}
}
