package trace

import (
	"stat/internal/bitvec"
)

// internLimit and internByteLimit cap the intern table by entry count and
// by total retained string bytes. Function namespaces are small and stable
// in practice; the caps only exist so a pathological stream of distinct
// names (fuzzing, a hostile peer — the wire allows 64 KiB per name) cannot
// grow a pooled table without bound. On overflow the table is cleared, not
// abandoned.
const (
	internLimit     = 1 << 16
	internByteLimit = 4 << 20
)

// internTable deduplicates function-name strings. Looking up a []byte key
// against the map allocates nothing on a hit, so at steady state — names
// repeat across every sibling subtree of a reduction — decoding a node's
// name is a map probe, not a string allocation.
type internTable struct {
	m     map[string]string
	bytes int
}

func newInternTable() internTable {
	return internTable{m: make(map[string]string)}
}

func (t *internTable) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	if len(t.m) >= internLimit || t.bytes >= internByteLimit {
		clear(t.m)
		t.bytes = 0
	}
	s := string(b)
	t.m[s] = s
	t.bytes += len(s)
	return s
}

// Codec bundles the reusable allocation state of wire decoding: an intern
// table for function names and a bitvec.Arena supplying decoded label
// storage. A TBON merge filter decodes its children, merges, encodes and
// releases everything before returning; with a Codec the decode side of
// that cycle reuses the same arena slabs and name strings every invocation
// instead of reallocating per packet. (The encode side needs no state:
// Tree.AppendBinary writes into any caller buffer, allocation-free when
// the buffer is pre-sized.)
//
// Lifecycle: every tree returned by DecodeTree borrows the codec's arena.
// Tree.Release returns the borrow; when the last outstanding tree is
// released the arena recycles automatically. The caller must release every
// decoded tree before the codec may be shared onward (pooled, reused by
// another goroutine): Live reports the outstanding count.
//
// Concurrency: a Codec is single-goroutine state. Decoded trees may be read
// concurrently like any other tree, but DecodeTree and the Release calls
// of the codec's trees must all happen on one goroutine at a time.
// Concurrent filter workers each take their own Codec (sync.Pool is the
// intended sharing mechanism).
type Codec struct {
	names internTable
	arena bitvec.Arena
	live  int
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{names: newInternTable()}
}

// DecodeTree decodes a tree encoded by Tree.MarshalBinary. The tree's
// labels live in the codec's arena until the tree is released; see the
// Codec lifecycle notes.
func (c *Codec) DecodeTree(b []byte) (*Tree, error) {
	t, err := decodeTree(b, &c.names, &c.arena, nil)
	if err != nil {
		// A failed decode may have carved label storage before erroring;
		// reclaim it now if no live tree pins the arena.
		if c.live == 0 {
			c.arena.Reset()
		}
		return nil, err
	}
	c.live++
	t.release = c.noteRelease
	return t, nil
}

// Live reports how many trees decoded by this codec have not yet been
// released. The codec must not be handed to another user while Live is
// nonzero.
func (c *Codec) Live() int { return c.live }

func (c *Codec) noteRelease() {
	c.live--
	if c.live == 0 {
		c.arena.Reset()
	}
}
