// Equivalence-class extraction tests: the hand-built Figure-1 hang
// population pinned literally, and the batched sampling engine's emitted
// 2D/3D trees checked against an independent reconstruction of the
// classes from the simulator's raw stacks. An external test package so it
// can drive internal/sample (which imports trace) without a cycle.
package trace_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"stat/internal/mpisim"
	"stat/internal/sample"
	"stat/internal/stackwalk"
	"stat/internal/trace"
)

// TestClassesFigure1HandBuilt pins EquivalenceClasses on a literal
// reconstruction of the paper's Figure 1: task 1 hung before its send,
// task 2 blocked in MPI_Waitall on it, everyone else polling in the
// barrier at two progress depths. Every class — path, members, and the
// size-descending-then-path order — is written out by hand.
func TestClassesFigure1HandBuilt(t *testing.T) {
	tr := trace.NewTree(8)
	hang := []string{"_start_blrts", "main", "do_SendOrStall", "__gettimeofday"}
	wait := []string{"_start_blrts", "main", "PMPI_Waitall", "MPID_Progress_wait", "BGLML_pollfcn"}
	barrier := []string{"_start_blrts", "main", "PMPI_Barrier", "MPIDI_BGLGI_Barrier", "BGLMP_GIBarrier", "BGLML_pollfcn"}
	deep := append(append([]string(nil), barrier...), "BGLML_Messager_advance", "BGLML_Messager_CMadvance")

	tr.AddStack(1, hang...)
	tr.AddStack(2, wait...)
	for _, task := range []int{0, 4, 6} {
		tr.AddStack(task, barrier...)
	}
	for _, task := range []int{3, 5, 7} {
		tr.AddStack(task, deep...)
	}

	got := tr.EquivalenceClasses()
	want := []trace.Class{
		// Size ties (3, 3, then 1, 1) break on byte-wise path order: the
		// barrier path sorts before its own Messager_advance extension,
		// and "PMPI_Waitall" (upper case) before "do_SendOrStall".
		{Path: barrier, Tasks: []int{0, 4, 6}},
		{Path: deep, Tasks: []int{3, 5, 7}},
		{Path: wait, Tasks: []int{2}},
		{Path: hang, Tasks: []int{1}},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d classes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Path, want[i].Path) {
			t.Errorf("class %d path = %v, want %v", i, got[i].Path, want[i].Path)
		}
		if !reflect.DeepEqual(got[i].Tasks, want[i].Tasks) {
			t.Errorf("class %d tasks = %v, want %v", i, got[i].Tasks, want[i].Tasks)
		}
	}
	if got[3].Representative() != 1 {
		t.Errorf("hung class representative = %d, want 1", got[3].Representative())
	}
}

// refClasses reconstructs the expected equivalence classes of a tree
// built from the given per-task path sets, straight from the class
// definition: a task belongs to the class at path P iff P is one of its
// sampled paths and none of its sampled paths strictly extends P (a
// maximal sampled prefix). Ordering matches EquivalenceClasses: size
// descending, then path ascending.
func refClasses(paths map[int][][]string) []trace.Class {
	key := func(p []string) string { return strings.Join(p, "\x00") }
	extends := func(long, short []string) bool {
		if len(long) <= len(short) {
			return false
		}
		for i := range short {
			if long[i] != short[i] {
				return false
			}
		}
		return true
	}
	members := map[string][]int{}
	byKey := map[string][]string{}
	tasks := make([]int, 0, len(paths))
	for task := range paths {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		for _, p := range paths[task] {
			maximal := true
			for _, q := range paths[task] {
				if extends(q, p) {
					maximal = false
					break
				}
			}
			if !maximal {
				continue
			}
			k := key(p)
			if m := members[k]; len(m) == 0 || m[len(m)-1] != task {
				members[k] = append(members[k], task)
				byKey[k] = p
			}
		}
	}
	out := make([]trace.Class, 0, len(members))
	for k, m := range members {
		out = append(out, trace.Class{Path: byKey[k], Tasks: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Tasks) != len(out[j].Tasks) {
			return len(out[i].Tasks) > len(out[j].Tasks)
		}
		return strings.Join(out[i].Path, "/") < strings.Join(out[j].Path, "/")
	})
	return out
}

// TestClassesOverSampleEngineTrees runs the batched sampling engine over
// the Figure-1 hang population (the default buggy ring) and pins the
// extracted classes of both emitted trees against refClasses fed from the
// simulator's raw stacks — an independent path from PCs to classes that
// never touches the trie, the resolver cache, or the tree code's own
// residual logic.
func TestClassesOverSampleEngineTrees(t *testing.T) {
	const (
		n       = 16
		samples = 6
	)
	app, err := mpisim.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	img, err := stackwalk.StaticImage()
	if err != nil {
		t.Fatal(err)
	}
	st, err := stackwalk.ParseImage(img)
	if err != nil {
		t.Fatal(err)
	}
	eng := sample.New(app, st, 1)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	b := eng.Sample(sample.Request{
		Ranks: ranks, GlobalIndex: true, Width: n,
		Samples: samples, Threads: 1,
		Want2D: true, Want3D: true,
	})
	defer b.Release()

	// Ground truth from the simulator: every sampled path per task, and
	// the last sample's path alone for the 2D view.
	all := map[int][][]string{}
	last := map[int][][]string{}
	for task := 0; task < n; task++ {
		for s := 0; s < samples; s++ {
			path := app.StackFuncs(task, 0, s)
			all[task] = append(all[task], path)
			if s == samples-1 {
				last[task] = [][]string{path}
			}
		}
	}

	check := func(name string, tr *trace.Tree, want []trace.Class) {
		t.Helper()
		got := tr.EquivalenceClasses()
		if len(got) != len(want) {
			t.Fatalf("%s: %d classes, want %d\n got: %v\nwant: %v", name, len(got), len(want), got, want)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Path, want[i].Path) || !reflect.DeepEqual(got[i].Tasks, want[i].Tasks) {
				t.Errorf("%s: class %d = %v @ %v, want %v @ %v",
					name, i, got[i].Tasks, got[i].Path, want[i].Tasks, want[i].Path)
			}
		}
	}
	check("2D", b.Tree2D, refClasses(last))
	check("3D", b.Tree3D, refClasses(all))

	// The hang population must be visible in the 2D classes: the hung
	// task and its waitall victim are singleton classes at their
	// characteristic leaves.
	var sawHang, sawWait bool
	for _, c := range b.Tree2D.EquivalenceClasses() {
		leaf := c.Path[len(c.Path)-1]
		if reflect.DeepEqual(c.Tasks, []int{1}) && leaf == mpisim.FnGettimeofday {
			sawHang = true
		}
		if reflect.DeepEqual(c.Tasks, []int{2}) && c.Path[2] == mpisim.FnWaitall {
			sawWait = true
		}
	}
	if !sawHang {
		t.Error("2D classes missing the hung task's __gettimeofday singleton")
	}
	if !sawWait {
		t.Error("2D classes missing the waitall victim's singleton")
	}
}
