package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"stat/internal/bitvec"
)

// randomNamedTree builds a tree whose function names cover every length
// class mod 8, so v1 label offsets land on every alignment and v2 must
// neutralize all of them.
func randomNamedTree(rng *rand.Rand, width int) *Tree {
	names := []string{"a", "ab", "abc", "abcd", "abcde", "abcdef", "abcdefg", "abcdefgh", "waitall_progress"}
	tr := NewTree(width)
	for task := 0; task < width; task++ {
		depth := 1 + rng.Intn(5)
		stack := make([]string, depth)
		for d := range stack {
			stack[d] = names[rng.Intn(len(names))]
		}
		tr.AddStack(task, stack...)
	}
	return tr
}

// TestMarshalV2RoundTrip pins the 8-aligned encoding: exact sizing, decode
// equality with the v1 decode of the same tree, and the structural
// alignment invariant — every label's word area at a multiple of 8 from
// the tree start.
func TestMarshalV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		tr := randomNamedTree(rng, 1+rng.Intn(120))
		b2, err := tr.MarshalBinaryV(WireV2)
		if err != nil {
			t.Fatal(err)
		}
		if len(b2) != tr.SerializedSizeV(WireV2) {
			t.Fatalf("trial %d: len %d, SerializedSizeV(2) %d", trial, len(b2), tr.SerializedSizeV(WireV2))
		}
		if len(b2)%8 != 0 {
			t.Fatalf("trial %d: v2 encoding is %d bytes, not a multiple of 8", trial, len(b2))
		}
		if v, err := SniffWireVersion(b2); err != nil || v != WireV2 {
			t.Fatalf("trial %d: sniff = %d, %v", trial, v, err)
		}
		got, err := UnmarshalBinary(b2)
		if err != nil {
			t.Fatalf("trial %d: v2 decode: %v", trial, err)
		}
		if !got.Equal(tr) {
			t.Fatalf("trial %d: v2 round trip changed the tree", trial)
		}
		// Re-encode canonically in both versions.
		re2, err := got.MarshalBinaryV(WireV2)
		if err != nil || !bytes.Equal(re2, b2) {
			t.Fatalf("trial %d: v2 re-encode not canonical (%v)", trial, err)
		}
		b1, err := tr.MarshalBinaryV(WireV1)
		if err != nil {
			t.Fatal(err)
		}
		got1, err := UnmarshalBinary(b1)
		if err != nil {
			t.Fatalf("trial %d: v1 decode: %v", trial, err)
		}
		if !got1.Equal(got) {
			t.Fatalf("trial %d: v1 and v2 decodes disagree", trial)
		}
		if len(b2) < len(b1) {
			t.Fatalf("trial %d: v2 (%dB) smaller than v1 (%dB)?", trial, len(b2), len(b1))
		}
		got.Release()
		got1.Release()
		tr.Release()
	}
}

// TestV2LabelWordsAligned walks the raw v2 encoding and asserts every
// label's word bytes start at an offset ≡ 0 (mod 8) from the tree start —
// the structural property the 100% alias rate rests on.
func TestV2LabelWordsAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := randomNamedTree(rng, 200)
	defer tr.Release()
	b, err := tr.MarshalBinaryV(WireV2)
	if err != nil {
		t.Fatal(err)
	}
	labels := 0
	pos := 8
	var walk func() // mirrors the decoder's cursor, offsets only
	walk = func() {
		nameLen := int(b[pos]) | int(b[pos+1])<<8
		pos += 2 + nameLen
		pos += pad8(pos)
		// Label header is 8 bytes; the words follow.
		if (pos+8)%8 != 0 {
			t.Fatalf("label words at offset %d, not 8-aligned", pos+8)
		}
		labels++
		nw := int(uint32(b[pos+4]) | uint32(b[pos+5])<<8 | uint32(b[pos+6])<<16 | uint32(b[pos+7])<<24)
		pos += 8 + 8*nw
		nc := int(uint32(b[pos]) | uint32(b[pos+1])<<8 | uint32(b[pos+2])<<16 | uint32(b[pos+3])<<24)
		pos += 8
		for i := 0; i < nc; i++ {
			walk()
		}
	}
	walk()
	if pos != len(b) || labels != tr.NodeCount()+1 {
		t.Fatalf("walk consumed %d of %d bytes over %d labels", pos, len(b), labels)
	}
}

// TestDecodeV2AliasesEveryLabel is the acceptance assertion for STR2:
// an aliasing decode of a v2 tree in an 8-aligned buffer aliases 100% of
// labels — the codec's miss counter stays exactly zero — while the same
// tree as v1 records misses (the fallback is observable, not silent).
func TestDecodeV2AliasesEveryLabel(t *testing.T) {
	if !bitvec.HostLittleEndian() {
		t.Skip("zero-copy decode only aliases on little-endian hosts")
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		tr := randomNamedTree(rng, 1+rng.Intn(150))
		wire, err := tr.MarshalBinaryV(WireV2)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCodec()
		var pin countingPin
		got, err := c.DecodeTreeAliasing(wire, &pin)
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := c.AliasStats()
		if want := int64(tr.NodeCount() + 1); hits != want || misses != 0 {
			t.Fatalf("trial %d: v2 alias stats %d/%d, want %d hits, 0 misses", trial, hits, misses, want)
		}
		if !got.Equal(tr) {
			t.Fatalf("trial %d: aliased v2 decode differs", trial)
		}
		got.Release()

		// The same tree in v1: name lengths force unaligned label offsets,
		// and the miss counter must say so.
		wire1, err := tr.MarshalBinaryV(WireV1)
		if err != nil {
			t.Fatal(err)
		}
		c1 := NewCodec()
		got1, err := c1.DecodeTreeAliasing(wire1, &pin)
		if err != nil {
			t.Fatal(err)
		}
		h1, m1 := c1.AliasStats()
		if h1+m1 != int64(tr.NodeCount()+1) {
			t.Fatalf("trial %d: v1 alias stats %d+%d don't cover all labels", trial, h1, m1)
		}
		got1.Release()
		tr.Release()
	}
}

// TestUnmarshalV2RejectsCorrupt extends the corrupt-input suite to the v2
// layout, in particular the canonical-padding rule.
func TestUnmarshalV2RejectsCorrupt(t *testing.T) {
	tr := NewTree(4)
	tr.AddStack(0, "main", "x")
	defer tr.Release()
	b, err := tr.MarshalBinaryV(WireV2)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the root node's name padding: root name is empty, so bytes
	// 10..15 are padding.
	cases := map[string]func([]byte) []byte{
		"empty":      func([]byte) []byte { return nil },
		"bad magic":  func(b []byte) []byte { c := clone(b); c[3] = '9'; return c },
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":   func(b []byte) []byte { return append(clone(b), 0xFF) },
		"dirty pad":  func(b []byte) []byte { c := clone(b); c[10] = 0xAA; return c },
		"wide label": func(b []byte) []byte { c := clone(b); c[4] = 99; return c },
		"v1 in v2":   func(b []byte) []byte { c := clone(b); copy(c, magicV1[:]); return c }, // sizes no longer parse
	}
	for name, corrupt := range cases {
		if _, err := UnmarshalBinary(corrupt(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestUnmarshalRemappedMatchesRemapWith pins the decode-fused remap to
// the two-pass fallback: decode + RemapWith must equal the fused
// UnmarshalBinaryRemapped, under both wire versions.
func TestUnmarshalRemappedMatchesRemapWith(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 15; trial++ {
		width := 1 + rng.Intn(200)
		tr := randomNamedTree(rng, width)
		perm := rng.Perm(width)
		r, err := bitvec.NewRemapper(perm, width)
		if err != nil {
			t.Fatal(err)
		}
		for _, version := range []uint8{WireV1, WireV2, WireV3} {
			wire, err := tr.MarshalBinaryV(version)
			if err != nil {
				t.Fatal(err)
			}
			want, err := UnmarshalBinary(wire)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.RemapWith(r); err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalBinaryRemapped(wire, r)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d v%d: fused remap differs from decode+RemapWith", trial, version)
			}
			if got.NumTasks != width {
				t.Fatalf("trial %d v%d: fused remap width %d", trial, version, got.NumTasks)
			}
			got.Release()
			want.Release()
		}
		tr.Release()
	}
}

// TestUnmarshalRemappedRejectsWidthMismatch: the permutation must span
// the wire tree's task space exactly.
func TestUnmarshalRemappedRejectsWidthMismatch(t *testing.T) {
	tr := NewTree(8)
	tr.AddStack(0, "main")
	defer tr.Release()
	wire, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := bitvec.NewRemapper([]int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBinaryRemapped(wire, r); err == nil {
		t.Error("width-mismatched remap accepted")
	}
}
