package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Class is one process equivalence class: the set of tasks whose sampled
// call paths terminate at the same prefix-tree node. These classes are
// STAT's product — they tell the user which few representative tasks to
// attach a heavyweight debugger to.
type Class struct {
	// Path is the call path from the program entry to the class's node.
	Path []string
	// Tasks are the member task indexes, ascending.
	Tasks []int
}

// Representative returns the lowest-ranked member, the task a heavyweight
// debugger would attach to first.
func (c Class) Representative() int {
	if len(c.Tasks) == 0 {
		return -1
	}
	return c.Tasks[0]
}

func (c Class) String() string {
	return fmt.Sprintf("%d task(s) [%s] @ %s", len(c.Tasks), shortRanges(c.Tasks), strings.Join(c.Path, " > "))
}

// shortRanges renders a member list, eliding long range lists the way the
// paper's figures do ("0,3,8-9,17,...").
func shortRanges(members []int) string {
	const maxLen = 48
	full := formatRanges(members)
	if len(full) <= maxLen {
		return full
	}
	cut := full[:maxLen]
	if i := strings.LastIndexByte(cut, ','); i > 0 {
		cut = cut[:i]
	}
	return cut + ",..."
}

// EquivalenceClasses extracts the classes from a tree: for every node, the
// tasks in its label that appear in no child label end their call path
// there and form a class. Classes are returned sorted by descending size,
// then by path, which is the order a user triages them in.
func (t *Tree) EquivalenceClasses() []Class {
	var classes []Class
	var rec func(n *Node, path []string)
	rec = func(n *Node, path []string) {
		residual := n.Tasks.Clone()
		for _, c := range n.Children {
			if err := residual.AndNotLabel(c.Tasks); err != nil {
				// Widths are a tree invariant; a mismatch is a bug upstream.
				panic(err)
			}
		}
		if !residual.Empty() && len(path) > 0 {
			classes = append(classes, Class{
				Path:  append([]string(nil), path...),
				Tasks: residual.Members(),
			})
		}
		for _, c := range n.Children {
			rec(c, append(path, c.Frame.Function))
		}
	}
	rec(t.Root, nil)
	sort.Slice(classes, func(i, j int) bool {
		if len(classes[i].Tasks) != len(classes[j].Tasks) {
			return len(classes[i].Tasks) > len(classes[j].Tasks)
		}
		return strings.Join(classes[i].Path, "/") < strings.Join(classes[j].Path, "/")
	})
	return classes
}
