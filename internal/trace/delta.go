package trace

import (
	"errors"
	"fmt"

	"stat/internal/bitvec"
)

// Delta frames: the streaming temporal mode's wire unit. A delta frame is
// a Tree whose labels are round-over-round XOR sets rather than task
// sets — see the "Delta frames" section of the wire format specification
// in serialize.go for the byte layout ("STD2"/"STD3") and the canonical
// rules, and ApplyDelta below for the fold semantics. Everything else
// about a delta frame — node structure, label containers, the codec and
// pool lifecycle — is shared with whole trees on purpose: the interior
// merge concatenates XOR labels with the same MergeConcat kernel, and the
// encode/decode paths reuse the label3 container machinery so a sparse
// change set travels as a run or array container a few bytes long.

// UnmarshalDelta decodes a delta frame encoded by AppendBinaryDeltaV.
// The returned tree owns its storage outright (labels in a private arena,
// like UnmarshalBinary); its labels are XOR sets, meaningful only to
// ApplyDelta and the delta merges. Whole-tree magics are rejected.
func UnmarshalDelta(b []byte) (*Tree, error) {
	names := internPool.Get().(*internTable)
	var arena bitvec.Arena
	t, _, err := decodeTree(b, names, &arena, &nodeBatch{}, nil, false, nil, true)
	internPool.Put(names)
	return t, err
}

// UnmarshalDeltaRemapped decodes a delta frame with the front-end rank
// remap fused into the decode, exactly like UnmarshalBinaryRemapped. XOR
// is linear, so remapping a delta's labels and then folding equals
// folding in concat order and remapping the result — which is why the
// front end can fold remapped deltas straight into its rank-ordered live
// tree without ever materializing the concat-ordered intermediate.
func UnmarshalDeltaRemapped(b []byte, r *bitvec.Remapper) (*Tree, error) {
	names := internPool.Get().(*internTable)
	var arena bitvec.Arena
	t, _, err := decodeTree(b, names, &arena, &nodeBatch{}, nil, false, r, true)
	internPool.Put(names)
	return t, err
}

// ApplyDelta folds a delta frame into the live tree in place:
//
//	for every delta node, aligned by path:  live label ^= XOR label
//	paths the live tree lacks are created (their labels start empty, so
//	  the XOR writes the new node's full label)
//	nodes whose labels fold to empty are deleted (a removed node's XOR
//	  is its old label, so the toggle clears it)
//
// Applied to round N−1's live tree, a round-N delta frame yields exactly
// round N's tree — and because XOR is an involution, applying the same
// frame twice is the identity, which the differential suite exploits.
//
// The live tree must own mutable dense labels (decoded by copying or
// fused remap; aliased/compressed trees are rejected by denseTasks's
// panic contract — use a copying decode for the resident tree). The
// delta's labels may be any representation. On error the live tree may be
// partially folded and must be discarded; errors only arise from corrupt
// or mismatched frames (width mismatch, a fold that empties a node which
// still has live descendants, a descend into a path the live tree lacks).
// ApplyDelta is the steady-state hot path of a streaming front end, so the
// label-only fold (structure unchanged — the quiescent-round shape) runs
// allocation-free: the recursion is a plain function, not a closure, and
// error paths name the offending node instead of building path strings.
func ApplyDelta(live, delta *Tree) error {
	if live.NumTasks != delta.NumTasks {
		return fmt.Errorf("trace: delta width %d, live tree width %d", delta.NumTasks, live.NumTasks)
	}
	if live.released || delta.released {
		return errors.New("trace: ApplyDelta on a released tree")
	}
	return applyDeltaNode(live, live.Root, delta.Root)
}

func applyDeltaNode(live *Tree, ln, dn *Node) error {
	if err := denseTasks(ln.Tasks).XorLabel(dn.Tasks); err != nil {
		return err
	}
	for _, dc := range dn.Children {
		name := dc.Frame.Function
		lc := ln.child(name)
		if lc == nil {
			lc = newNode(dc.Frame, bitvec.New(live.NumTasks))
			ln.insertChild(lc)
		}
		if err := applyDeltaNode(live, lc, dc); err != nil {
			return err
		}
		if denseTasks(lc.Tasks).Empty() {
			// The node's tasks all left this path. Its subtree must be
			// gone too — child labels are subsets of their parent's —
			// so a surviving descendant means the frame is corrupt.
			if len(lc.Children) != 0 {
				return fmt.Errorf("trace: delta empties node %q but leaves it descendants", name)
			}
			ln.removeChild(name)
			recycleNodes(lc, live.owner)
		}
	}
	return nil
}

// removeChild deletes the named child from n's sorted Children slice,
// keeping the backing array (the slot is nilled so the dropped node is
// not retained). The caller owns recycling the removed node.
func (n *Node) removeChild(name string) {
	for i, c := range n.Children {
		if c.Frame.Function == name {
			copy(n.Children[i:], n.Children[i+1:])
			n.Children[len(n.Children)-1] = nil
			n.Children = n.Children[:len(n.Children)-1]
			return
		}
	}
}

// MergeXor merges delta frame src into delta frame dst under the ORIGINAL
// representation: both frames label nodes with XOR sets spanning the same
// full-job task space, and matching nodes combine by XOR. Daemons own
// disjoint rank sets, so in practice the combine is a disjoint union —
// but XOR is used (not OR) because it is the operation that commutes with
// the fold: fold(dst ⊕ src) = fold(dst) then fold(src), even if change
// sets ever overlapped. Nodes whose labels cancel to empty and have no
// surviving children are pruned, preserving the canonical delta form.
// dst must own mutable dense labels (the copying decode).
func MergeXor(dst, src *Tree) error {
	if dst.NumTasks != src.NumTasks {
		return fmt.Errorf("trace: MergeXor task-space mismatch %d vs %d", dst.NumTasks, src.NumTasks)
	}
	var rec func(d, s *Node) error
	rec = func(d, s *Node) error {
		if err := denseTasks(d.Tasks).XorLabel(s.Tasks); err != nil {
			return err
		}
		for _, sc := range s.Children {
			dc := d.child(sc.Frame.Function)
			if dc == nil {
				dc = newNode(sc.Frame, bitvec.New(dst.NumTasks))
				d.insertChild(dc)
			}
			if err := rec(dc, sc); err != nil {
				return err
			}
			if len(dc.Children) == 0 && denseTasks(dc.Tasks).Empty() {
				d.removeChild(sc.Frame.Function)
				recycleNodes(dc, dst.owner)
			}
		}
		return nil
	}
	return rec(dst.Root, src.Root)
}
