package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// countingPin records retain/release traffic the way a tbon.Lease would.
type countingPin struct {
	retains  int
	releases int
}

func (p *countingPin) Retain()  { p.retains++ }
func (p *countingPin) Release() { p.releases++ }

// TestDecodeTreeAliasingMatchesCopying pins the zero-copy decode to the
// copying decode: same tree, byte-identical re-encode, across trees whose
// function names force label words onto every alignment class.
func TestDecodeTreeAliasingMatchesCopying(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"", "a", "ab", "abc", "abcd", "abcde", "abcdef", "abcdefg", "abcdefgh"}
	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(200)
		src := NewTree(width)
		for task := 0; task < width; task++ {
			depth := 1 + rng.Intn(5)
			stack := make([]string, depth)
			for d := range stack {
				stack[d] = names[rng.Intn(len(names)-1)+1] + names[rng.Intn(len(names))]
			}
			src.AddStack(task, stack...)
		}
		wire, err := src.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		copying := NewCodec()
		want, err := copying.DecodeTree(wire)
		if err != nil {
			t.Fatal(err)
		}
		aliasing := NewCodec()
		var pin countingPin
		got, err := aliasing.DecodeTreeAliasing(wire, &pin)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: aliasing decode differs from copying decode", trial)
		}
		reenc, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, wire) {
			t.Fatalf("trial %d: aliasing tree re-encodes differently", trial)
		}
		if pin.retains > 1 {
			t.Fatalf("trial %d: pin retained %d times, want at most once per tree", trial, pin.retains)
		}
		if pin.releases != 0 {
			t.Fatalf("trial %d: pin released before the tree", trial)
		}
		got.Release()
		if pin.releases != pin.retains {
			t.Fatalf("trial %d: pin retains %d != releases %d after Tree.Release",
				trial, pin.retains, pin.releases)
		}
		want.Release()
		src.Release()
		if copying.Live() != 0 || aliasing.Live() != 0 {
			t.Fatalf("trial %d: live counts %d/%d after release", trial, copying.Live(), aliasing.Live())
		}
	}
}

// TestDecodeTreeAliasingPinOutlivesFilterReturn models the reduction hot
// path: the buffer's pin must be held for exactly as long as the decoded
// tree lives, however many other trees the codec is juggling.
func TestDecodeTreeAliasingPinPerTree(t *testing.T) {
	src := NewTree(64)
	for task := 0; task < 64; task++ {
		src.AddStack(task, "main", "x", "y")
	}
	wire, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	src.Release()

	c := NewCodec()
	var pinA, pinB countingPin
	a, err := c.DecodeTreeAliasing(wire, &pinA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.DecodeTreeAliasing(wire, &pinB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Live() != 2 {
		t.Fatalf("Live = %d, want 2", c.Live())
	}
	a.Release()
	if pinA.releases != pinA.retains {
		t.Fatal("pin A not dropped with its tree")
	}
	if pinB.retains > 0 && pinB.releases != 0 {
		t.Fatal("pin B dropped while its tree is live")
	}
	b.Release()
	if pinB.releases != pinB.retains {
		t.Fatal("pin B not dropped with its tree")
	}
	if c.Live() != 0 {
		t.Fatalf("Live = %d after releases", c.Live())
	}
}

// TestCodecMergeConcatMatchesPackageLevel pins the arena-backed merge to
// the package-level MergeConcat across ragged widths, including aliasing
// (read-only) inputs.
func TestCodecMergeConcatMatchesPackageLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	funcs := []string{"main", "f", "gg", "hhh", "solve", "io"}
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(4)
		parts := make([]*Tree, k)
		wires := make([][]byte, k)
		for i := range parts {
			w := rng.Intn(9) // zero-width inputs included
			tr := NewTree(w)
			for task := 0; task < w; task++ {
				depth := 1 + rng.Intn(4)
				stack := make([]string, depth)
				for d := range stack {
					stack[d] = funcs[rng.Intn(len(funcs))]
				}
				tr.AddStack(task, stack...)
			}
			var err error
			wires[i], err = tr.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			parts[i] = tr
		}
		want := MergeConcat(parts...)

		c := NewCodec()
		var pin countingPin
		decoded := make([]*Tree, k)
		for i := range decoded {
			var err error
			decoded[i], err = c.DecodeTreeAliasing(wires[i], &pin)
			if err != nil {
				t.Fatal(err)
			}
		}
		got := c.MergeConcat(decoded...)
		if !got.Equal(want) {
			t.Fatalf("trial %d: codec MergeConcat differs from package MergeConcat", trial)
		}
		gotWire, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wantWire, err := want.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotWire, wantWire) {
			t.Fatalf("trial %d: codec merge encodes differently", trial)
		}
		got.Release()
		for _, d := range decoded {
			d.Release()
		}
		if c.Live() != 0 {
			t.Fatalf("trial %d: Live = %d", trial, c.Live())
		}
		if pin.retains != pin.releases {
			t.Fatalf("trial %d: pin imbalance %d retains / %d releases", trial, pin.retains, pin.releases)
		}
		want.Release()
		for _, p := range parts {
			p.Release()
		}
	}
}
