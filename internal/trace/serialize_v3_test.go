package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"stat/internal/bitvec"
)

// runStructuredTree builds a tree whose node populations are mostly
// contiguous rank ranges — the run-dominated shape the v3 containers
// exist for — with a few scattered stragglers so array and dense
// containers appear too.
func runStructuredTree(rng *rand.Rand, width int) *Tree {
	tr := NewTree(width)
	for task := 0; task < width; task++ {
		tr.AddStack(task, "main", "solve")
		if task%2 == 0 {
			// Scattered half-population: canonical kind is dense or array
			// depending on width.
			tr.AddStack(task, "main", "io")
		}
	}
	for task := 0; task < width; task += 17 {
		tr.AddStack(task, "main", "solve", "mpi_wait") // sparse array shape
	}
	return tr
}

// TestMarshalV3RoundTrip pins the adaptive-label encoding: exact sizing,
// 8-byte multiple, decode equality with the v1/v2 decodes of the same
// tree, canonical re-encode, and strictly-no-larger size versus v2 on
// every tree (a v3 label is the smallest of its three containers, and
// dense costs v2's size plus 8 header bytes per label at most).
func TestMarshalV3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		var tr *Tree
		if trial%2 == 0 {
			tr = randomNamedTree(rng, 1+rng.Intn(120))
		} else {
			tr = runStructuredTree(rng, 1+rng.Intn(400))
		}
		b3, err := tr.MarshalBinaryV(WireV3)
		if err != nil {
			t.Fatal(err)
		}
		if len(b3) != tr.SerializedSizeV(WireV3) {
			t.Fatalf("trial %d: len %d, SerializedSizeV(3) %d", trial, len(b3), tr.SerializedSizeV(WireV3))
		}
		if len(b3)%8 != 0 {
			t.Fatalf("trial %d: v3 encoding is %d bytes, not a multiple of 8", trial, len(b3))
		}
		if v, err := SniffWireVersion(b3); err != nil || v != WireV3 {
			t.Fatalf("trial %d: sniff = %d, %v", trial, v, err)
		}
		got, err := UnmarshalBinary(b3)
		if err != nil {
			t.Fatalf("trial %d: v3 decode: %v", trial, err)
		}
		if !got.Equal(tr) {
			t.Fatalf("trial %d: v3 round trip changed the tree", trial)
		}
		re3, err := got.MarshalBinaryV(WireV3)
		if err != nil || !bytes.Equal(re3, b3) {
			t.Fatalf("trial %d: v3 re-encode not canonical (%v)", trial, err)
		}
		for _, version := range []uint8{WireV1, WireV2} {
			bv, err := tr.MarshalBinaryV(version)
			if err != nil {
				t.Fatal(err)
			}
			gotV, err := UnmarshalBinary(bv)
			if err != nil {
				t.Fatalf("trial %d: v%d decode: %v", trial, version, err)
			}
			if !gotV.Equal(got) {
				t.Fatalf("trial %d: v%d and v3 decodes disagree", trial, version)
			}
			gotV.Release()
		}
		b2, err := tr.MarshalBinaryV(WireV2)
		if err != nil {
			t.Fatal(err)
		}
		if len(b3) > len(b2)+8*(tr.NodeCount()+1) {
			t.Fatalf("trial %d: v3 %dB exceeds v2 %dB by more than the header delta", trial, len(b3), len(b2))
		}
		got.Release()
		tr.Release()
	}
}

// TestMarshalV3SpecBytes hand-encodes a small tree field by field from
// the serialize.go STR3 grammar and requires AppendBinaryV to produce
// exactly those bytes — the wire spec is the contract, not the code.
func TestMarshalV3SpecBytes(t *testing.T) {
	// Width 200 (4 dense words), one container of each kind:
	// "solve" holds every task — 1 run extent (8B) beats dense (32B);
	// "io" holds 3 scattered ranks — array (3 u32 + pad = 16B) beats
	// 3 run extents (24B) and dense (32B);
	// "x" holds the 100 even ranks — dense (32B) beats 100 runs (800B)
	// and a 100-member array (400B).
	const width = 200
	tr := NewTree(width)
	for task := 0; task < width; task++ {
		tr.AddStack(task, "solve")
	}
	for _, task := range []int{1, 50, 131} {
		tr.AddStack(task, "io")
	}
	for task := 0; task < width; task += 2 {
		tr.AddStack(task, "x")
	}
	defer tr.Release()

	var want []byte
	u16 := func(v int) { want = binary.LittleEndian.AppendUint16(want, uint16(v)) }
	u32 := func(v int) { want = binary.LittleEndian.AppendUint32(want, uint32(v)) }
	pad := func() {
		for len(want)%8 != 0 {
			want = append(want, 0)
		}
	}
	label := func(kind, count int, payload func()) {
		u32(width)
		want = append(want, byte(kind), 0, 0, 0)
		u32(count)
		u32(0)
		payload()
	}
	allTasks := func() { u32(0); u32(width) } // one extent [start=0, length=200)

	want = append(want, 'S', 'T', 'R', '3')
	u32(width) // numTasks
	// Root: empty name, run label covering every task, 3 children.
	u16(0)
	pad()
	label(1, 1, allTasks)
	u32(3)
	u32(0)
	// Children in sorted name order: "io", "solve", "x".
	u16(2)
	want = append(want, "io"...)
	pad()
	label(2, 3, func() {
		for _, m := range []int{1, 50, 131} {
			u32(m)
		}
		u32(0) // odd count: one zero u32 of padding
	})
	u32(0)
	u32(0)
	u16(5)
	want = append(want, "solve"...)
	pad()
	label(1, 1, allTasks)
	u32(0)
	u32(0)
	u16(1)
	want = append(want, 'x')
	pad()
	label(0, 4, func() { // dense: ceil(200/64) = 4 words, even bits only
		for w := 0; w < 4; w++ {
			var word uint64
			for i := 0; i < 64; i++ {
				bit := 64*w + i
				if bit < width && bit%2 == 0 {
					word |= 1 << i
				}
			}
			want = binary.LittleEndian.AppendUint64(want, word)
		}
	})
	u32(0)
	u32(0)

	got, err := tr.MarshalBinaryV(WireV3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v3 encoding differs from the spec bytes:\ngot  %x\nwant %x", got, want)
	}
}

// TestDecodeV3AliasesEveryLabel extends the 100% alias-rate guarantee to
// STR3: the 16-byte label3 header preserves v2's 8-alignment induction,
// so an aliasing decode of a v3 tree in an 8-aligned buffer aliases all
// containers — including the compressed ones, which surface as frozen
// sets viewing the pinned buffer — and the decoded tree re-encodes
// byte-identically in every version (the Set downgrade path).
func TestDecodeV3AliasesEveryLabel(t *testing.T) {
	if !bitvec.HostLittleEndian() {
		t.Skip("zero-copy decode only aliases on little-endian hosts")
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		tr := runStructuredTree(rng, 1+rng.Intn(300))
		wire, err := tr.MarshalBinaryV(WireV3)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCodec()
		var pin countingPin
		got, err := c.DecodeTreeAliasing(wire, &pin)
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := c.AliasStats()
		if want := int64(tr.NodeCount() + 1); hits != want || misses != 0 {
			t.Fatalf("trial %d: v3 alias stats %d/%d, want %d hits, 0 misses", trial, hits, misses, want)
		}
		ls := c.LabelStats()
		if ls.Labels() != int64(tr.NodeCount()+1) {
			t.Fatalf("trial %d: label stats cover %d labels, want %d", trial, ls.Labels(), tr.NodeCount()+1)
		}
		if !got.Equal(tr) {
			t.Fatalf("trial %d: aliased v3 decode differs", trial)
		}
		// A decoded tree holding frozen compressed labels must re-encode
		// identically to the all-dense original in every version.
		for _, version := range []uint8{WireV1, WireV2, WireV3} {
			want, err := tr.MarshalBinaryV(version)
			if err != nil {
				t.Fatal(err)
			}
			re, err := got.MarshalBinaryV(version)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, want) {
				t.Fatalf("trial %d: v3-aliased tree re-encodes differently under v%d", trial, version)
			}
		}
		got.Release()
		tr.Release()
	}
}

// TestUnmarshalV3RejectsCorrupt extends the corrupt-input suite to the
// v3 layout: tree-level framing damage plus the label3 canonical rules
// (bitvec's own tests cover the container encodings exhaustively; here
// the rejection must surface through the tree decoder).
func TestUnmarshalV3RejectsCorrupt(t *testing.T) {
	tr := NewTree(64)
	for task := 0; task < 64; task++ {
		tr.AddStack(0, "main", "x")
	}
	defer tr.Release()
	b, err := tr.MarshalBinaryV(WireV3)
	if err != nil {
		t.Fatal(err)
	}
	// Root node: empty name at offset 8, pad to 16, label3 header at 16
	// (width u32, kind u8 at 20, zeros 21..23, count u32 at 24, zero u32
	// at 28), payload at 32.
	cases := map[string]func([]byte) []byte{
		"empty":           func([]byte) []byte { return nil },
		"bad magic":       func(b []byte) []byte { c := clone(b); c[3] = '9'; return c },
		"truncated":       func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":        func(b []byte) []byte { return append(clone(b), 0xFF) },
		"dirty pad":       func(b []byte) []byte { c := clone(b); c[10] = 0xAA; return c },
		"bad kind":        func(b []byte) []byte { c := clone(b); c[20] = 3; return c },
		"dirty kind pad":  func(b []byte) []byte { c := clone(b); c[21] = 1; return c },
		"dirty head zero": func(b []byte) []byte { c := clone(b); c[28] = 1; return c },
		// Root spans all 64 tasks = one run [0,64): doubling the count
		// field promises a second extent that overlaps the payload walk.
		"bad count": func(b []byte) []byte { c := clone(b); c[24] = 7; return c },
		// Non-canonical container: the full population must be a run, so
		// rewriting kind to dense (with the right word payload) is a
		// formally well-formed label the decoder must still reject.
		"non-canonical": func(b []byte) []byte {
			c := clone(b)
			c[20] = 0 // kind dense
			c[24] = 1 // count = 1 word
			binary.LittleEndian.PutUint64(c[32:], ^uint64(0))
			return c
		},
	}
	for name, corrupt := range cases {
		if _, err := UnmarshalBinary(corrupt(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestV3MinVersionDowngradeChain is the wire-level mixed-fleet story: a
// tree sampled and encoded at v3 decodes into frozen compressed labels,
// then re-encodes for a v2 peer, whose decode re-encodes for a v1 peer,
// and the final v1 bytes match encoding the original tree at v1
// directly — no information is created or lost anywhere on the ladder.
func TestV3MinVersionDowngradeChain(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		tr := runStructuredTree(rng, 1+rng.Intn(300))
		b3, err := tr.MarshalBinaryV(WireV3)
		if err != nil {
			t.Fatal(err)
		}
		at3, err := UnmarshalBinary(b3)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := at3.MarshalBinaryV(WireV2)
		if err != nil {
			t.Fatal(err)
		}
		at2, err := UnmarshalBinary(b2)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := at2.MarshalBinaryV(WireV1)
		if err != nil {
			t.Fatal(err)
		}
		want1, err := tr.MarshalBinaryV(WireV1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, want1) {
			t.Fatalf("trial %d: v3→v2→v1 chain bytes differ from direct v1 encode", trial)
		}
		at3.Release()
		at2.Release()
		tr.Release()
	}
}
