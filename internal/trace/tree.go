// Package trace implements STAT's call-graph prefix trees. A trace is one
// sampled call stack; the 2D (trace×space) tree merges one sample from every
// task, and the 3D (trace×space×time) tree merges all samples over time.
// Every tree node carries a task-set edge label; the width of those labels
// and the merge rule (union vs concatenation) is what distinguishes the
// paper's original and optimized representations (Section V).
//
// Trees are not internally synchronized, but the package keeps no mutable
// shared state: merge, serialization and traversal functions touch only
// their arguments, and output trees never share nodes with input trees.
// Concurrent TBON filter workers may therefore merge distinct trees in
// parallel without locking; only concurrent operations on the same tree
// need external synchronization. Node allocation draws from a shared pool
// (see Release) so the concurrent merge path stays allocation-cheap.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"stat/internal/bitvec"
)

// Frame is one entry of a call stack, outermost first in a Trace.
type Frame struct {
	Function string
}

// Trace is one sampled call stack for one task (or one thread of a task).
type Trace struct {
	// Task is the task index within the owning tree's task space: a daemon
	// building a subtree-local tree numbers its own tasks from zero.
	Task   int
	Frames []Frame
}

// Node is a prefix-tree node. The edge entering the node is labeled with
// the set of tasks whose call path includes the node.
type Node struct {
	Frame    Frame
	Tasks    *bitvec.Vector
	Children []*Node // sorted by Frame.Function for deterministic traversal
}

func (n *Node) child(name string) *Node {
	i := sort.Search(len(n.Children), func(i int) bool {
		return n.Children[i].Frame.Function >= name
	})
	if i < len(n.Children) && n.Children[i].Frame.Function == name {
		return n.Children[i]
	}
	return nil
}

func (n *Node) insertChild(c *Node) {
	i := sort.Search(len(n.Children), func(i int) bool {
		return n.Children[i].Frame.Function >= c.Frame.Function
	})
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// Tree is a call-graph prefix tree over a task space of NumTasks indexes.
// The root is a sentinel (empty function name) whose label holds every task
// that has contributed at least one trace.
type Tree struct {
	NumTasks int
	Root     *Node
}

// NewTree returns an empty tree over a task space of n indexes.
func NewTree(n int) *Tree {
	if n < 0 {
		panic("trace: negative task-space size")
	}
	return &Tree{NumTasks: n, Root: newNode(Frame{}, bitvec.New(n))}
}

// Add merges one trace into the tree. Frames are outermost (e.g. _start)
// first. Adding the same trace twice is idempotent.
func (t *Tree) Add(tr Trace) {
	if tr.Task < 0 || tr.Task >= t.NumTasks {
		panic(fmt.Sprintf("trace: task %d out of range [0,%d)", tr.Task, t.NumTasks))
	}
	n := t.Root
	n.Tasks.Set(tr.Task)
	for _, f := range tr.Frames {
		c := n.child(f.Function)
		if c == nil {
			c = newNode(f, bitvec.New(t.NumTasks))
			n.insertChild(c)
		}
		c.Tasks.Set(tr.Task)
		n = c
	}
}

// AddStack is a convenience wrapper turning function names into a Trace.
func (t *Tree) AddStack(task int, funcs ...string) {
	frames := make([]Frame, len(funcs))
	for i, f := range funcs {
		frames[i] = Frame{Function: f}
	}
	t.Add(Trace{Task: task, Frames: frames})
}

// NodeCount reports the number of nodes excluding the sentinel root.
func (t *Tree) NodeCount() int {
	count := -1
	t.walk(func(*Node, int) { count++ })
	return count
}

// Depth reports the longest root-to-leaf path length (root excluded).
func (t *Tree) Depth() int {
	max := 0
	t.walk(func(_ *Node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// walk visits every node pre-order with its depth (root depth 0).
func (t *Tree) walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 0)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		c := newNode(n.Frame, n.Tasks.Clone())
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = rec(ch)
		}
		return c
	}
	return &Tree{NumTasks: t.NumTasks, Root: rec(t.Root)}
}

// Equal reports whether two trees have identical structure and labels.
func (t *Tree) Equal(o *Tree) bool {
	if t.NumTasks != o.NumTasks {
		return false
	}
	var rec func(a, b *Node) bool
	rec = func(a, b *Node) bool {
		if a.Frame != b.Frame || !a.Tasks.Equal(b.Tasks) || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !rec(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	return rec(t.Root, o.Root)
}

// Validate checks the structural invariants: labels have the tree's width,
// children are sorted and unique, and every child label is a subset of its
// parent's. It returns the first violation found.
func (t *Tree) Validate() error {
	var rec func(n *Node, path string) error
	rec = func(n *Node, path string) error {
		if n.Tasks.Len() != t.NumTasks {
			return fmt.Errorf("trace: node %q label width %d, tree width %d", path, n.Tasks.Len(), t.NumTasks)
		}
		for i, c := range n.Children {
			if i > 0 && n.Children[i-1].Frame.Function >= c.Frame.Function {
				return fmt.Errorf("trace: node %q children unsorted at %q", path, c.Frame.Function)
			}
			sub := c.Tasks.Clone()
			if err := sub.AndNot(n.Tasks); err != nil {
				return err
			}
			if !sub.Empty() {
				return fmt.Errorf("trace: node %q/%q label not a subset of parent", path, c.Frame.Function)
			}
			if err := rec(c, path+"/"+c.Frame.Function); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(t.Root, "")
}

// MergeUnion merges src into dst under the ORIGINAL representation: both
// trees label edges with vectors spanning the same (full-job) task space,
// and matching nodes combine by set union. This is what every level of the
// unoptimized STAT analysis tree did, and why labels carried mostly zeros.
func MergeUnion(dst, src *Tree) error {
	if dst.NumTasks != src.NumTasks {
		return fmt.Errorf("trace: MergeUnion task-space mismatch %d vs %d", dst.NumTasks, src.NumTasks)
	}
	var rec func(d, s *Node) error
	rec = func(d, s *Node) error {
		if err := d.Tasks.UnionWith(s.Tasks); err != nil {
			return err
		}
		for _, sc := range s.Children {
			dc := d.child(sc.Frame.Function)
			if dc == nil {
				dc = newNode(sc.Frame, bitvec.New(dst.NumTasks))
				d.insertChild(dc)
			}
			if err := rec(dc, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(dst.Root, src.Root)
}

// MergeConcat merges child trees under the OPTIMIZED hierarchical
// representation: the output task space is the concatenation of the inputs'
// task spaces (in argument order), and a node's label is the concatenation
// of the children's labels, with zero bits for children lacking the node.
// No full-job-width vector is ever constructed below the front end.
func MergeConcat(trees ...*Tree) *Tree {
	total := 0
	offsets := make([]int, len(trees))
	for i, tr := range trees {
		offsets[i] = total
		total += tr.NumTasks
	}

	// rec combines parallel nodes: parts[i] is the node from trees[i], or
	// nil when that tree lacks the path.
	var rec func(parts []*Node) *Node
	rec = func(parts []*Node) *Node {
		// Label: concatenation with zero padding for absent parts.
		label := bitvec.New(total)
		var frame Frame
		for i, p := range parts {
			if p == nil {
				continue
			}
			frame = p.Frame
			for _, m := range p.Tasks.Members() {
				label.Set(offsets[i] + m)
			}
		}
		n := newNode(frame, label)

		// Union of child names across the parts, in sorted order.
		names := make([]string, 0)
		seen := map[string]bool{}
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, c := range p.Children {
				if !seen[c.Frame.Function] {
					seen[c.Frame.Function] = true
					names = append(names, c.Frame.Function)
				}
			}
		}
		sort.Strings(names)
		for _, name := range names {
			sub := make([]*Node, len(parts))
			for i, p := range parts {
				if p != nil {
					sub[i] = p.child(name)
				}
			}
			n.Children = append(n.Children, rec(sub))
		}
		return n
	}

	roots := make([]*Node, len(trees))
	for i, tr := range trees {
		roots[i] = tr.Root
	}
	return &Tree{NumTasks: total, Root: rec(roots)}
}

// Remap rewrites every label through perm (see bitvec.Vector.Remap) into a
// task space of the given width. The front end applies this once, after the
// final concatenation, to restore MPI rank order. The paper measured this
// step at 0.66 s for 208K tasks.
func (t *Tree) Remap(perm []int, width int) error {
	var rec func(n *Node) error
	rec = func(n *Node) error {
		nv, err := n.Tasks.Remap(perm, width)
		if err != nil {
			return err
		}
		n.Tasks = nv
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return err
	}
	t.NumTasks = width
	return nil
}

// String renders the tree as an indented outline with edge labels, useful
// in tests and the CLI.
func (t *Tree) String() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if depth > 0 {
			sb.WriteString(strings.Repeat("  ", depth-1))
			fmt.Fprintf(&sb, "%s %s\n", n.Frame.Function, n.Tasks)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
