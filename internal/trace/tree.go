// Package trace implements STAT's call-graph prefix trees. A trace is one
// sampled call stack; the 2D (trace×space) tree merges one sample from every
// task, and the 3D (trace×space×time) tree merges all samples over time.
// Every tree node carries a task-set edge label; the width of those labels
// and the merge rule (union vs concatenation) is what distinguishes the
// paper's original and optimized representations (Section V).
//
// Trees are not internally synchronized, but the package keeps no mutable
// shared state: merge, serialization and traversal functions touch only
// their arguments, and output trees never share nodes with input trees.
// Concurrent TBON filter workers may therefore merge distinct trees in
// parallel without locking; only concurrent operations on the same tree
// need external synchronization. Node allocation draws from a shared pool
// (see Release) so the concurrent merge path stays allocation-cheap.
//
// Wire encode/decode state follows the same discipline. A Codec — intern
// table, label arena, node and tree free lists — is single-goroutine
// state: DecodeTree, the codec's MergeConcat, and the Release of that
// codec's trees must be serial, so concurrent filter workers take one
// Codec each (typically via sync.Pool) rather than sharing one. The
// function-name strings a codec interns are immutable and may be shared
// freely across trees and goroutines; the package-level UnmarshalBinary
// draws its intern tables from an internal pool, which is why concurrent
// decodes of the same function namespace are safe yet still stop
// allocating name strings at steady state.
//
// # Wire formats
//
// Trees serialize in one of three wire formats — compact v1 ("STR1"),
// 8-aligned v2 ("STR2"), and compressed-label v3 ("STR3") — specified
// field by field in serialize.go. Every decoder in the package
// dispatches on the magic, so any format is accepted everywhere;
// encoders take an explicit version (Tree.AppendBinaryV), with the
// v1-emitting MarshalBinary retained for compatibility. Which version a
// stream carries is negotiated by the protocol layer (package proto):
// the attach handshake picks the highest version both ends speak, so
// old v1 captures and peers keep working while upgraded sessions get
// v2's alignment guarantee — under which the zero-copy decode below
// aliases every label, not just the ~1/8 whose v1 offsets happen to
// land word-aligned — and v3's adaptive per-label containers (dense
// words, sorted run extents, or sorted member arrays, whichever encodes
// smallest; see bitvec.PutLabel3), which keep per-node label bytes
// sublinear in job width for the run-structured populations prefix
// trees produce. v3 preserves v2's 8-alignment induction, so the two
// guarantees compose. Codec.AliasStats exposes the realized alias
// hit/miss counts and Codec.LabelStats the decoded v3 container mix.
//
// # Buffer lifetime
//
// Codec.DecodeTreeAliasing is the zero-copy decode: on little-endian
// hosts, labels whose wire bytes land 8-byte aligned become read-only
// views of the packet buffer instead of copies. Such a tree pins the
// buffer — the codec retains the caller-supplied Pin (a tbon.Lease in
// the reduction pipeline) once per aliasing tree and releases it from
// Tree.Release, so the buffer provably outlives every label that views
// it. Aliasing trees must be treated as immutable: mutating a label
// would scribble on the wire buffer. The copying DecodeTree has no such
// restriction and is what the in-place union merge of the original
// representation uses.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"stat/internal/bitvec"
)

// Frame is one entry of a call stack, outermost first in a Trace.
type Frame struct {
	Function string
}

// Trace is one sampled call stack for one task (or one thread of a task).
type Trace struct {
	// Task is the task index within the owning tree's task space: a daemon
	// building a subtree-local tree numbers its own tasks from zero.
	Task   int
	Frames []Frame
}

// Node is a prefix-tree node. The edge entering the node is labeled with
// the set of tasks whose call path includes the node. The label is either
// a dense *bitvec.Vector or a compressed (frozen) *bitvec.Set; trees built
// by Add and the copying decodes carry dense labels throughout, while the
// hierarchical merge and the v3 aliasing decode produce compressed labels
// where the population's run structure makes them smaller. Mutating paths
// (Add, MergeUnion) own dense labels by construction.
type Node struct {
	Frame    Frame
	Tasks    bitvec.Label
	Children []*Node // sorted by Frame.Function for deterministic traversal
}

// denseTasks returns a node label known to be mutable — the invariant on
// every mutating path. Compressed labels are frozen (see bitvec.Set) and
// only ever appear on read-only trees, so hitting one here is a bug.
func denseTasks(l bitvec.Label) *bitvec.Vector {
	v, ok := l.(*bitvec.Vector)
	if !ok {
		panic("trace: mutating a tree with compressed (frozen) labels")
	}
	return v
}

// denseOf materializes a label as a dense vector, returning it unchanged
// when it already is one. Read-only fallback for Vector-typed consumers.
func denseOf(l bitvec.Label) *bitvec.Vector {
	if v, ok := l.(*bitvec.Vector); ok {
		return v
	}
	return l.Clone()
}

func (n *Node) child(name string) *Node {
	i := sort.Search(len(n.Children), func(i int) bool {
		return n.Children[i].Frame.Function >= name
	})
	if i < len(n.Children) && n.Children[i].Frame.Function == name {
		return n.Children[i]
	}
	return nil
}

func (n *Node) insertChild(c *Node) {
	i := sort.Search(len(n.Children), func(i int) bool {
		return n.Children[i].Frame.Function >= c.Frame.Function
	})
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// Tree is a call-graph prefix tree over a task space of NumTasks indexes.
// The root is a sentinel (empty function name) whose label holds every task
// that has contributed at least one trace.
type Tree struct {
	NumTasks int
	Root     *Node
	// owner, when non-nil, is the Codec this tree borrows: Release
	// returns the nodes (and the Tree struct itself) to the codec's free
	// lists instead of the shared sync.Pool, and notifies the codec so it
	// can recycle the label arena once nothing borrows it.
	owner *Codec
	// pin, when non-nil, is the leased wire buffer an aliasing decode
	// left this tree's labels viewing; Release drops it last.
	pin Pin
	// released flips on Release so a second Release panics instead of
	// silently double-recycling nodes shared with a now-live tree.
	released bool
}

// NewTree returns an empty tree over a task space of n indexes.
func NewTree(n int) *Tree {
	if n < 0 {
		panic("trace: negative task-space size")
	}
	return &Tree{NumTasks: n, Root: newNode(Frame{}, bitvec.New(n))}
}

// Add merges one trace into the tree. Frames are outermost (e.g. _start)
// first. Adding the same trace twice is idempotent.
func (t *Tree) Add(tr Trace) {
	if tr.Task < 0 || tr.Task >= t.NumTasks {
		panic(fmt.Sprintf("trace: task %d out of range [0,%d)", tr.Task, t.NumTasks))
	}
	n := t.Root
	denseTasks(n.Tasks).Set(tr.Task)
	for _, f := range tr.Frames {
		c := n.child(f.Function)
		if c == nil {
			c = newNode(f, bitvec.New(t.NumTasks))
			n.insertChild(c)
		}
		denseTasks(c.Tasks).Set(tr.Task)
		n = c
	}
}

// AddStack is a convenience wrapper turning function names into a Trace.
func (t *Tree) AddStack(task int, funcs ...string) {
	frames := make([]Frame, len(funcs))
	for i, f := range funcs {
		frames[i] = Frame{Function: f}
	}
	t.Add(Trace{Task: task, Frames: frames})
}

// NodeCount reports the number of nodes excluding the sentinel root.
func (t *Tree) NodeCount() int {
	count := -1
	t.walk(func(*Node, int) { count++ })
	return count
}

// Depth reports the longest root-to-leaf path length (root excluded).
func (t *Tree) Depth() int {
	max := 0
	t.walk(func(_ *Node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// walk visits every node pre-order with its depth (root depth 0).
func (t *Tree) walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 0)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		c := newNode(n.Frame, n.Tasks.Clone())
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = rec(ch)
		}
		return c
	}
	return &Tree{NumTasks: t.NumTasks, Root: rec(t.Root)}
}

// Equal reports whether two trees have identical structure and labels.
func (t *Tree) Equal(o *Tree) bool {
	if t.NumTasks != o.NumTasks {
		return false
	}
	var rec func(a, b *Node) bool
	rec = func(a, b *Node) bool {
		if a.Frame != b.Frame || !bitvec.Equal(a.Tasks, b.Tasks) || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !rec(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	return rec(t.Root, o.Root)
}

// Validate checks the structural invariants: labels have the tree's width,
// children are sorted and unique, and every child label is a subset of its
// parent's. It returns the first violation found.
func (t *Tree) Validate() error {
	var rec func(n *Node, path string) error
	rec = func(n *Node, path string) error {
		if n.Tasks.Len() != t.NumTasks {
			return fmt.Errorf("trace: node %q label width %d, tree width %d", path, n.Tasks.Len(), t.NumTasks)
		}
		for i, c := range n.Children {
			if i > 0 && n.Children[i-1].Frame.Function >= c.Frame.Function {
				return fmt.Errorf("trace: node %q children unsorted at %q", path, c.Frame.Function)
			}
			sub := c.Tasks.Clone()
			if err := sub.AndNotLabel(n.Tasks); err != nil {
				return err
			}
			if !sub.Empty() {
				return fmt.Errorf("trace: node %q/%q label not a subset of parent", path, c.Frame.Function)
			}
			if err := rec(c, path+"/"+c.Frame.Function); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(t.Root, "")
}

// MergeUnion merges src into dst under the ORIGINAL representation: both
// trees label edges with vectors spanning the same (full-job) task space,
// and matching nodes combine by set union. This is what every level of the
// unoptimized STAT analysis tree did, and why labels carried mostly zeros.
func MergeUnion(dst, src *Tree) error {
	if dst.NumTasks != src.NumTasks {
		return fmt.Errorf("trace: MergeUnion task-space mismatch %d vs %d", dst.NumTasks, src.NumTasks)
	}
	var rec func(d, s *Node) error
	rec = func(d, s *Node) error {
		if err := denseTasks(d.Tasks).UnionLabel(s.Tasks); err != nil {
			return err
		}
		for _, sc := range s.Children {
			dc := d.child(sc.Frame.Function)
			if dc == nil {
				dc = newNode(sc.Frame, bitvec.New(dst.NumTasks))
				d.insertChild(dc)
			}
			if err := rec(dc, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(dst.Root, src.Root)
}

// MergeConcat merges child trees under the OPTIMIZED hierarchical
// representation: the output task space is the concatenation of the inputs'
// task spaces (in argument order), and a node's label is the concatenation
// of the children's labels, with zero bits for children lacking the node.
// No full-job-width vector is ever constructed below the front end.
//
// Parallel nodes are combined by a k-way merge over the already-sorted
// Children slices and labels are built by blitting whole source vectors at
// precomputed bit offsets, so the steady-state cost per output node is one
// label allocation plus word-speed copies — no name set, no sort, no
// per-bit loops.
func MergeConcat(trees ...*Tree) *Tree {
	total := 0
	offsets := make([]int, len(trees))
	for i, tr := range trees {
		offsets[i] = total
		total += tr.NumTasks
	}
	m := concatMerger{offsets: offsets, total: total}
	roots := make([]*Node, len(trees))
	for i, tr := range trees {
		roots[i] = tr.Root
	}
	return &Tree{NumTasks: total, Root: m.merge(roots, 0)}
}

// concatMerger carries one MergeConcat's state: the per-input bit offsets
// and a per-depth scratch pool for the k-way walk (child cursors and the
// parallel-node slice passed to the next level), reused across every node
// at that depth. When codec is non-nil (Codec.MergeConcat), labels are
// carved from the codec's arena and nodes are drawn from its free list,
// making the steady-state merge allocation-free; the codec also keeps the
// merger itself alive across calls so the scratch stays warm.
type concatMerger struct {
	offsets []int
	total   int
	scratch []concatScratch
	codec   *Codec
	roots   []*Node // call-level scratch for Codec.MergeConcat
}

type concatScratch struct {
	cur []int   // next unconsumed child per part
	sub []*Node // parallel children handed to the recursive call
}

// buildLabel concatenates the parts' labels at the precomputed offsets,
// choosing the output representation adaptively: when the parts' total
// run count bounds the output under the dense footprint, the output is a
// compressed run set built by shifting each part's extents — interval
// arithmetic, never per-bit — with runs meeting exactly at a part
// boundary coalescing. Otherwise the output is a dense vector filled by
// word-level blits. Concatenation never splits a run, so the parts' total
// is a true upper bound and extent storage can be carved up front (from
// the codec arena on the filter hot path, keeping the cycle
// allocation-free once slabs are warm).
func (m *concatMerger) buildLabel(parts []*Node) (bitvec.Label, Frame) {
	var frame Frame
	runs := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		frame = p.Frame
		_, r := p.Tasks.ContainerCounts()
		runs += r
	}
	if 8*runs < 8*((m.total+63)/64) {
		var ext []bitvec.Extent
		if m.codec != nil {
			ext = m.codec.arena.GrabExtents(runs)[:0]
		}
		for i, p := range parts {
			if p == nil {
				continue
			}
			ext = p.Tasks.AppendExtents(ext, m.offsets[i])
		}
		if m.codec != nil {
			return m.codec.arena.NewRunSet(m.total, ext), frame
		}
		return bitvec.NewRunSet(m.total, ext), frame
	}
	var label *bitvec.Vector
	if m.codec != nil {
		label = m.codec.arena.New(m.total)
	} else {
		label = bitvec.New(m.total)
	}
	for i, p := range parts {
		if p == nil {
			continue
		}
		p.Tasks.BlitInto(label, m.offsets[i])
	}
	return label, frame
}

// merge combines parallel nodes: parts[i] is the node from input i, or nil
// when that input lacks the path. parts aliases the caller's depth-level
// scratch and is stable for the duration of the call.
func (m *concatMerger) merge(parts []*Node, depth int) *Node {
	label, frame := m.buildLabel(parts)
	var n *Node
	if m.codec != nil {
		n = m.codec.getNode(frame, label)
	} else {
		n = newNode(frame, label)
	}

	if depth == len(m.scratch) {
		m.scratch = append(m.scratch, concatScratch{})
	}
	// A codec-held merger is reused across calls with varying input
	// counts; (re)size this depth's scratch to the current width.
	if cap(m.scratch[depth].cur) < len(m.offsets) {
		m.scratch[depth].cur = make([]int, len(m.offsets))
		m.scratch[depth].sub = make([]*Node, len(m.offsets))
	}
	cur := m.scratch[depth].cur[:len(m.offsets)]
	sub := m.scratch[depth].sub[:len(m.offsets)]
	for i := range cur {
		cur[i] = 0
	}

	// k-way merge: repeatedly take the smallest unconsumed child name
	// across the parts and recurse on the parallel children carrying it.
	// Children slices are sorted, so this visits names in sorted order
	// and each child exactly once.
	for {
		minName := ""
		found := false
		for i, p := range parts {
			if p == nil || cur[i] >= len(p.Children) {
				continue
			}
			if name := p.Children[cur[i]].Frame.Function; !found || name < minName {
				minName, found = name, true
			}
		}
		if !found {
			break
		}
		for i, p := range parts {
			sub[i] = nil
			if p == nil || cur[i] >= len(p.Children) {
				continue
			}
			if c := p.Children[cur[i]]; c.Frame.Function == minName {
				sub[i] = c
				cur[i]++
			}
		}
		n.Children = append(n.Children, m.merge(sub, depth+1))
	}
	return n
}

// Remap rewrites every label through perm (see bitvec.NewRemapper) into a
// task space of the given width. The front end applies this once, after the
// final concatenation, to restore MPI rank order. The paper measured this
// step at 0.66 s for 208K tasks. The permutation is compiled and validated
// once, not once per node; callers remapping several trees through the same
// permutation (the 2D and 3D trees of one gather) should compile it
// themselves and use RemapWith.
func (t *Tree) Remap(perm []int, width int) error {
	r, err := bitvec.NewRemapper(perm, width)
	if err != nil {
		return err
	}
	return t.RemapWith(r)
}

// RemapWith rewrites every label through a compiled permutation. For a
// square permutation the labels rotate in place along the permutation's
// cycles (bitvec.Remapper.ApplyInPlace) — no per-node allocation, no
// second buffer; otherwise each label is rebuilt through Remapper.Apply.
// The tree must own its labels outright: remapping a tree whose labels
// alias a wire buffer (Codec.DecodeTreeAliasing) would scribble on the
// buffer. This is the fallback path for trees already decoded by copying;
// the hierarchical front end fuses the remap into the final decode
// instead (UnmarshalBinaryRemapped), skipping the second pass entirely.
func (t *Tree) RemapWith(r *bitvec.Remapper) error {
	inPlace := r.Square()
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if v, ok := n.Tasks.(*bitvec.Vector); ok && inPlace {
			if err := r.ApplyInPlace(v); err != nil {
				return err
			}
		} else {
			// Compressed labels are frozen, so they remap by rebuild —
			// materialize dense, permute into a fresh vector.
			nv, err := r.Apply(denseOf(n.Tasks))
			if err != nil {
				return err
			}
			n.Tasks = nv
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return err
	}
	t.NumTasks = r.Width()
	return nil
}

// String renders the tree as an indented outline with edge labels, useful
// in tests and the CLI.
func (t *Tree) String() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if depth > 0 {
			sb.WriteString(strings.Repeat("  ", depth-1))
			fmt.Fprintf(&sb, "%s %s\n", n.Frame.Function, n.Tasks)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
