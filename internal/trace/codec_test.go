package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"stat/internal/bitvec"
)

// --- reference implementations -------------------------------------------
//
// These are the straightforward pre-optimization implementations, kept
// verbatim so the word-level merge and the codec are pinned to byte- and
// structure-identical behavior.

// refMarshalTree is the original append-per-field tree encoder.
func refMarshalTree(t *Tree) ([]byte, error) {
	buf := make([]byte, 0, t.SerializedSize())
	buf = append(buf, magicV1[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.NumTasks))
	var rec func(n *Node) error
	rec = func(n *Node) error {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Frame.Function)))
		buf = append(buf, n.Frame.Function...)
		b, err := denseOf(n.Tasks).MarshalBinary()
		if err != nil {
			return err
		}
		buf = append(buf, b...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.Children)))
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return nil, err
	}
	return buf, nil
}

// refMergeConcat is the original map-and-sort concatenation merge.
func refMergeConcat(trees ...*Tree) *Tree {
	total := 0
	offsets := make([]int, len(trees))
	for i, tr := range trees {
		offsets[i] = total
		total += tr.NumTasks
	}
	var rec func(parts []*Node) *Node
	rec = func(parts []*Node) *Node {
		label := bitvec.New(total)
		var frame Frame
		for i, p := range parts {
			if p == nil {
				continue
			}
			frame = p.Frame
			for _, m := range p.Tasks.Members() {
				label.Set(offsets[i] + m)
			}
		}
		n := &Node{Frame: frame, Tasks: label}
		names := make([]string, 0)
		seen := map[string]bool{}
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, c := range p.Children {
				if !seen[c.Frame.Function] {
					seen[c.Frame.Function] = true
					names = append(names, c.Frame.Function)
				}
			}
		}
		sort.Strings(names)
		for _, name := range names {
			sub := make([]*Node, len(parts))
			for i, p := range parts {
				if p != nil {
					sub[i] = p.child(name)
				}
			}
			n.Children = append(n.Children, rec(sub))
		}
		return n
	}
	roots := make([]*Node, len(trees))
	for i, tr := range trees {
		roots[i] = tr.Root
	}
	return &Tree{NumTasks: total, Root: rec(roots)}
}

// randomTree builds a deterministic arbitrary tree from a shared function
// namespace (names repeat across trees, as they do across sibling
// subtrees in a reduction).
func multiStackTree(rng *rand.Rand, tasks int) *Tree {
	t := NewTree(tasks)
	funcs := []string{"main", "solve", "mpi_wait", "mpi_send", "compute", "io_read", "barrier", "loop"}
	for task := 0; task < tasks; task++ {
		stacks := 1 + rng.Intn(3)
		for s := 0; s < stacks; s++ {
			depth := 1 + rng.Intn(6)
			fs := make([]string, depth)
			for d := range fs {
				fs[d] = funcs[rng.Intn(len(funcs))]
			}
			t.AddStack(task, fs...)
		}
	}
	return t
}

func TestMergeConcatDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(5)
		parts := make([]*Tree, k)
		for i := range parts {
			// Ragged widths, including empty trees and width-0 task spaces.
			parts[i] = multiStackTree(rng, rng.Intn(40))
		}
		got := MergeConcat(parts...)
		want := refMergeConcat(parts...)
		if !got.Equal(want) {
			t.Fatalf("trial %d: MergeConcat differs from reference\ngot:\n%swant:\n%s",
				trial, got, want)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: merged tree invalid: %v", trial, err)
		}
		// Byte-identical on the wire too.
		gb, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wb, err := refMarshalTree(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("trial %d: wire bytes differ from reference", trial)
		}
	}
}

func TestMergeConcatNoTrees(t *testing.T) {
	m := MergeConcat()
	if m.NumTasks != 0 || len(m.Root.Children) != 0 {
		t.Fatalf("MergeConcat() = %d tasks, %d children", m.NumTasks, len(m.Root.Children))
	}
}

func TestMarshalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		tr := multiStackTree(rng, 1+rng.Intn(100))
		got, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := refMarshalTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: MarshalBinary differs from reference encoder", trial)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c := NewCodec()
	for trial := 0; trial < 10; trial++ {
		tr := multiStackTree(rng, 1+rng.Intn(60))
		wire, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// The append-into-buffer encode must be byte-identical to
		// MarshalBinary.
		enc, err := tr.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, wire) {
			t.Fatalf("trial %d: AppendBinary differs from MarshalBinary", trial)
		}
		// Codec decode must equal the package-level decode.
		got, err := c.DecodeTree(wire)
		if err != nil {
			t.Fatal(err)
		}
		heap, err := UnmarshalBinary(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(heap) || !got.Equal(tr) {
			t.Fatalf("trial %d: codec decode mismatch", trial)
		}
		if c.Live() != 1 {
			t.Fatalf("trial %d: Live = %d, want 1", trial, c.Live())
		}
		// Releasing the only live tree recycles the arena for the next
		// trial; correctness across trials is exactly the recycle test.
		got.Release()
		if c.Live() != 0 {
			t.Fatalf("trial %d: Live = %d after release, want 0", trial, c.Live())
		}
	}
}

func TestCodecOverlappingTrees(t *testing.T) {
	// Two trees decoded before either is released: the arena must not
	// recycle until both are gone.
	rng := rand.New(rand.NewSource(53))
	c := NewCodec()
	a := multiStackTree(rng, 30)
	b := multiStackTree(rng, 17)
	wa, _ := a.MarshalBinary()
	wb, _ := b.MarshalBinary()
	da, err := c.DecodeTree(wa)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.DecodeTree(wb)
	if err != nil {
		t.Fatal(err)
	}
	da.Release()
	if c.Live() != 1 {
		t.Fatalf("Live = %d, want 1", c.Live())
	}
	// db must still be intact after its sibling's release.
	if !db.Equal(b) {
		t.Fatal("second tree corrupted by first tree's release")
	}
	db.Release()
	if c.Live() != 0 {
		t.Fatalf("Live = %d, want 0", c.Live())
	}
}

func TestCodecDecodeErrorsMatchPackage(t *testing.T) {
	tr := multiStackTree(rand.New(rand.NewSource(59)), 20)
	wire, _ := tr.MarshalBinary()
	bad := [][]byte{
		nil,
		wire[:3],
		wire[:len(wire)-1],
		append(append([]byte(nil), wire...), 0),
	}
	// Corrupt the magic.
	corrupt := append([]byte(nil), wire...)
	corrupt[0] = 'X'
	bad = append(bad, corrupt)
	c := NewCodec()
	for i, b := range bad {
		_, pkgErr := UnmarshalBinary(b)
		_, codecErr := c.DecodeTree(b)
		if (pkgErr == nil) != (codecErr == nil) {
			t.Errorf("input %d: package err %v, codec err %v", i, pkgErr, codecErr)
		}
		if c.Live() != 0 {
			t.Fatalf("input %d: failed decode left Live = %d", i, c.Live())
		}
	}
}

func TestCodecSteadyStateDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	// The filter cycle: decode, release, repeat. After warmup the arena
	// and intern table are hot and the only steady-state allocations are
	// the handful the decoder cannot avoid (the tree header and decoder
	// state); the per-label and per-name allocations must be gone.
	tr := multiStackTree(rand.New(rand.NewSource(67)), 64)
	wire, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec()
	for i := 0; i < 3; i++ { // warm arena, intern table and node pool
		d, err := c.DecodeTree(wire)
		if err != nil {
			t.Fatal(err)
		}
		d.Release()
	}
	nodes := tr.NodeCount() + 1
	n := testing.AllocsPerRun(50, func() {
		d, err := c.DecodeTree(wire)
		if err != nil {
			t.Fatal(err)
		}
		d.Release()
	})
	// Well under one allocation per node proves per-node costs are gone;
	// the budget tolerates pool-side noise (GC may strip the node pool
	// mid-run) without letting a per-label or per-name regression through.
	if n > float64(nodes)/2 {
		t.Errorf("steady-state codec decode allocates %v per run for %d nodes", n, nodes)
	}
}

func TestTreeAppendBinaryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	tr := multiStackTree(rand.New(rand.NewSource(71)), 64)
	buf := make([]byte, 0, tr.SerializedSize())
	if n := testing.AllocsPerRun(100, func() {
		if _, err := tr.AppendBinary(buf[:0]); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("Tree.AppendBinary into sized buffer allocates %v per run, want <= 2", n)
	}
}

func TestInternTableCap(t *testing.T) {
	tbl := newInternTable()
	var names [][]byte
	for i := 0; i < internLimit+10; i++ {
		names = append(names, []byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
	for _, b := range names {
		s := tbl.intern(b)
		if s != string(b) {
			t.Fatalf("intern(%v) = %q", b, s)
		}
	}
	if len(tbl.m) > internLimit {
		t.Fatalf("intern table grew to %d entries, cap %d", len(tbl.m), internLimit)
	}
}
