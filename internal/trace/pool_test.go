package trace

import (
	"sync"
	"testing"
)

// TestReleaseRecycle churns trees through the pool and checks recycled
// nodes carry no stale state into new trees.
func TestReleaseRecycle(t *testing.T) {
	build := func(salt string) *Tree {
		tr := NewTree(8)
		tr.AddStack(0, "main", "a"+salt, "b")
		tr.AddStack(3, "main", "a"+salt, "c")
		tr.AddStack(7, "main", "z")
		return tr
	}
	want := build("x").String()
	for i := 0; i < 100; i++ {
		tr := build("x")
		if got := tr.String(); got != want {
			t.Fatalf("iteration %d: tree changed after recycling:\ngot  %q\nwant %q", i, got, want)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		tr.Release()
	}
	// Interleave a differently-shaped tree to dirty the pool.
	for i := 0; i < 50; i++ {
		a := build("x")
		b := build("y")
		b.Release()
		if got := a.String(); got != want {
			t.Fatalf("live tree corrupted by releasing another: %q", got)
		}
		a.Release()
	}
}

// TestReleaseConcurrent hammers the pool from many goroutines; run under
// -race this guards the concurrent filter workers' allocation path.
func TestReleaseConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTree(16)
				tr.AddStack(w, "main", "f", "g")
				tr.AddStack((w+i)%16, "main", "h")
				enc, err := tr.MarshalBinary()
				if err != nil {
					t.Error(err)
					return
				}
				dec, err := UnmarshalBinary(enc)
				if err != nil {
					t.Error(err)
					return
				}
				if !tr.Equal(dec) {
					t.Error("round trip mismatch under concurrency")
					return
				}
				tr.Release()
				dec.Release()
			}
		}(w)
	}
	wg.Wait()
}

func TestReleaseIdempotentOnEmpty(t *testing.T) {
	tr := NewTree(4)
	tr.Release()
	tr.Release() // second release is a no-op, not a double-put
}
