package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestReleaseRecycle churns trees through the pool and checks recycled
// nodes carry no stale state into new trees.
func TestReleaseRecycle(t *testing.T) {
	build := func(salt string) *Tree {
		tr := NewTree(8)
		tr.AddStack(0, "main", "a"+salt, "b")
		tr.AddStack(3, "main", "a"+salt, "c")
		tr.AddStack(7, "main", "z")
		return tr
	}
	want := build("x").String()
	for i := 0; i < 100; i++ {
		tr := build("x")
		if got := tr.String(); got != want {
			t.Fatalf("iteration %d: tree changed after recycling:\ngot  %q\nwant %q", i, got, want)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		tr.Release()
	}
	// Interleave a differently-shaped tree to dirty the pool.
	for i := 0; i < 50; i++ {
		a := build("x")
		b := build("y")
		b.Release()
		if got := a.String(); got != want {
			t.Fatalf("live tree corrupted by releasing another: %q", got)
		}
		a.Release()
	}
}

// TestReleaseConcurrent hammers the pool from many goroutines; run under
// -race this guards the concurrent filter workers' allocation path.
func TestReleaseConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTree(16)
				tr.AddStack(w, "main", "f", "g")
				tr.AddStack((w+i)%16, "main", "h")
				enc, err := tr.MarshalBinary()
				if err != nil {
					t.Error(err)
					return
				}
				dec, err := UnmarshalBinary(enc)
				if err != nil {
					t.Error(err)
					return
				}
				if !tr.Equal(dec) {
					t.Error("round trip mismatch under concurrency")
					return
				}
				tr.Release()
				dec.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestDoubleReleasePanics pins the ownership guard: a second Release on
// the same tree would hand nodes now owned by a live tree back to the
// allocator, so it must fail loudly instead of corrupting the pool.
func TestDoubleReleasePanics(t *testing.T) {
	tr := NewTree(4)
	tr.AddStack(1, "main", "f")
	tr.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "Release called twice") {
			t.Fatalf("panic %v does not carry the double-release diagnostic", r)
		}
	}()
	tr.Release()
}

// TestCodecDoubleReleasePanics covers the codec-owned path, where the
// stakes are higher: a double release would double-decrement the codec's
// live count and recycle the arena under a live tree.
func TestCodecDoubleReleasePanics(t *testing.T) {
	src := NewTree(4)
	src.AddStack(2, "main", "g")
	enc, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	src.Release()
	c := NewCodec()
	tr, err := c.DecodeTree(enc)
	if err != nil {
		t.Fatal(err)
	}
	tr.Release()
	if c.Live() != 0 {
		t.Fatalf("Live = %d after release", c.Live())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Release of a codec tree did not panic")
		}
		if c.Live() != 0 {
			t.Fatalf("double release corrupted Live: %d", c.Live())
		}
	}()
	tr.Release()
}
