package trace

import "stat/internal/bitvec"

// unmarshalLabel decodes one bit-vector edge label from the wire.
// Split out so serialize.go reads linearly.
func unmarshalLabel(b []byte) (*bitvec.Vector, int, error) {
	return bitvec.UnmarshalBinary(b)
}
