package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"stat/internal/bitvec"
)

func buildHangTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree(8)
	for _, task := range []int{0, 3, 4, 5, 6, 7} {
		tr.AddStack(task, "main", "PMPI_Barrier", "poll")
	}
	tr.AddStack(1, "main", "do_SendOrStall")
	tr.AddStack(2, "main", "PMPI_Waitall", "progress")
	return tr
}

func TestFocus(t *testing.T) {
	tr := buildHangTree(t)
	focused, err := tr.FocusTasks(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := focused.Validate(); err != nil {
		t.Fatal(err)
	}
	// The barrier branch vanished; both suspect branches remain.
	if focused.Root.Children[0].child("PMPI_Barrier") != nil {
		t.Error("focus kept the barrier branch")
	}
	if focused.Root.Children[0].child("do_SendOrStall") == nil {
		t.Error("focus dropped the hung branch")
	}
	if got := focused.Root.Tasks.Members(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("focused root = %v", got)
	}
	// Task space unchanged (labels stay comparable with the original).
	if focused.NumTasks != tr.NumTasks {
		t.Errorf("focus changed task space to %d", focused.NumTasks)
	}
}

func TestFocusEmptyAndErrors(t *testing.T) {
	tr := buildHangTree(t)
	empty, err := tr.Focus(bitvec.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if empty.NodeCount() != 0 {
		t.Errorf("empty focus has %d nodes", empty.NodeCount())
	}
	if _, err := tr.Focus(bitvec.New(9)); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := tr.FocusTasks(99); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestPathTo(t *testing.T) {
	tr := buildHangTree(t)
	if got := tr.PathTo(1); !reflect.DeepEqual(got, []string{"main", "do_SendOrStall"}) {
		t.Errorf("PathTo(1) = %v", got)
	}
	if got := tr.PathTo(0); !reflect.DeepEqual(got, []string{"main", "PMPI_Barrier", "poll"}) {
		t.Errorf("PathTo(0) = %v", got)
	}
	if got := tr.PathTo(-1); got != nil {
		t.Errorf("PathTo(-1) = %v", got)
	}
	// A tree that never saw the task.
	sparse := NewTree(8)
	sparse.AddStack(0, "main")
	if got := sparse.PathTo(5); got != nil {
		t.Errorf("PathTo(unsampled) = %v", got)
	}
}

func TestDiffDetectsMovement(t *testing.T) {
	before := buildHangTree(t)
	after := NewTree(8)
	// Everyone except the hung pair advanced to a new frame.
	for _, task := range []int{0, 3, 4, 5, 6, 7} {
		after.AddStack(task, "main", "PMPI_Barrier", "poll2")
	}
	after.AddStack(1, "main", "do_SendOrStall")
	after.AddStack(2, "main", "PMPI_Waitall", "progress")

	entries, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no diff for moved tasks")
	}
	var sawOld, sawNew bool
	for _, e := range entries {
		last := e.Path[len(e.Path)-1]
		if last == "poll" && e.InA == 6 && e.InB == 0 {
			sawOld = true
		}
		if last == "poll2" && e.InA == 0 && e.InB == 6 {
			sawNew = true
		}
		if last == "do_SendOrStall" {
			t.Errorf("hung branch diffed: %v", e)
		}
	}
	if !sawOld || !sawNew {
		t.Errorf("diff missing movement: %v", entries)
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a := buildHangTree(t)
	b := buildHangTree(t)
	entries, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("identical trees diff: %v", entries)
	}
	if _, err := Diff(a, NewTree(9)); err == nil {
		t.Error("mismatched spaces accepted")
	}
}

func TestStable(t *testing.T) {
	before := buildHangTree(t)
	after := NewTree(8)
	for _, task := range []int{0, 3, 4, 5, 6, 7} {
		after.AddStack(task, "main", "PMPI_Barrier", "poll2") // moved
	}
	after.AddStack(1, "main", "do_SendOrStall")           // stuck
	after.AddStack(2, "main", "PMPI_Waitall", "progress") // stuck

	stable, err := Stable(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if got := stable.Members(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("stable tasks = %v, want the hung pair [1 2]", got)
	}
}

func TestPathsTo(t *testing.T) {
	tr := NewTree(4)
	// Task 0 observed at two distinct depths of one chain and on a
	// separate branch: prefix-nested paths collapse to the deepest, the
	// disjoint branch stays.
	tr.AddStack(0, "main", "a")
	tr.AddStack(0, "main", "a", "b")
	tr.AddStack(0, "main", "z")
	tr.AddStack(1, "main", "a")

	paths := tr.PathsTo(0)
	if len(paths) != 2 {
		t.Fatalf("PathsTo(0) = %v, want 2 maximal paths", paths)
	}
	if !reflect.DeepEqual(paths[0], []string{"main", "a", "b"}) {
		t.Errorf("deep path = %v", paths[0])
	}
	if !reflect.DeepEqual(paths[1], []string{"main", "z"}) {
		t.Errorf("branch path = %v", paths[1])
	}
	if got := tr.PathsTo(1); len(got) != 1 || !reflect.DeepEqual(got[0], []string{"main", "a"}) {
		t.Errorf("PathsTo(1) = %v", got)
	}
	if got := tr.PathsTo(3); got != nil {
		t.Errorf("PathsTo(unsampled) = %v", got)
	}
	if got := tr.PathsTo(99); got != nil {
		t.Errorf("PathsTo(out of range) = %v", got)
	}
}

// TestQuickPathsToConsistent: PathTo returns one of PathsTo's entries,
// and every task in the root label has at least one maximal path.
func TestQuickPathsToConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		tr := randomTree(r, n)
		for task := 0; task < n; task++ {
			paths := tr.PathsTo(task)
			if len(paths) == 0 {
				return false
			}
			single := tr.PathTo(task)
			found := false
			for _, p := range paths {
				if reflect.DeepEqual(p, single) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFocusInvariants: focusing on any subset keeps (1) structural
// validity, (2) only tasks from the subset, (3) each kept task's full
// path.
func TestQuickFocusInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		tr := randomTree(r, n)
		set := bitvec.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				set.Set(i)
			}
		}
		focused, err := tr.Focus(set)
		if err != nil || focused.Validate() != nil {
			return false
		}
		rootMembers := focused.Root.Tasks.Clone()
		if err := rootMembers.AndNot(set); err != nil || !rootMembers.Empty() {
			return false // a task outside the set survived
		}
		for _, task := range set.Members() {
			if !reflect.DeepEqual(tr.PathTo(task), focused.PathTo(task)) {
				return false // focus changed a kept task's path
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiffSymmetry: Diff(a,b) and Diff(b,a) report the same paths
// with swapped counts.
func TestQuickDiffSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a, b := randomTree(r, n), randomTree(r, n)
		ab, err := Diff(a, b)
		if err != nil {
			return false
		}
		ba, err := Diff(b, a)
		if err != nil {
			return false
		}
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if !reflect.DeepEqual(ab[i].Path, ba[i].Path) ||
				ab[i].InA != ba[i].InB || ab[i].InB != ba[i].InA ||
				!reflect.DeepEqual(ab[i].Moved, ba[i].Moved) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
