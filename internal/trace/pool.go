package trace

import (
	"sync"

	"stat/internal/bitvec"
)

// nodePool recycles prefix-tree nodes. A TBON merge filter decodes its
// child trees, merges them, serializes the result and drops every
// intermediate tree — at a few hundred nodes per tree and one filter call
// per interior overlay node, allocation is the dominant cost of the merge
// path. The pool is shared by every tree and safe for concurrent filter
// workers; recycled nodes keep their Children backing array, so a
// steady-state filter reuses child slices instead of regrowing them.
// Codec-owned trees bypass this pool entirely: their nodes cycle through
// the codec's single-goroutine free list (filled by Release, drained by
// DecodeTree and MergeConcat), so the filter hot path pays no per-node
// synchronization at all; the shared pool is the overflow and the home of
// every tree built outside a codec.
var nodePool = sync.Pool{New: func() any { return new(Node) }}

// newNode returns a pooled node initialized with the given frame and
// label and no children.
func newNode(frame Frame, tasks bitvec.Label) *Node {
	n := nodePool.Get().(*Node)
	n.Frame = frame
	n.Tasks = tasks
	return n
}

// nodeBatch allocates nodes from geometrically growing slabs. It serves
// decode paths whose trees are expected to outlive the call (the
// package-level UnmarshalBinary), where slab locality and one allocation
// per batch beat per-node pool misses. The filter cycle — decode, merge,
// release, repeat — goes through the owning codec's free list instead,
// because released nodes return with warm Children capacity that slab
// nodes lack.
// Releasing a slab-built tree is still safe: its nodes individually enter
// the pool like any others.
type nodeBatch struct {
	slab []Node
	size int
}

// get returns an initialized node from the batch, or from the shared pool
// when b is nil.
func (b *nodeBatch) get(frame Frame, tasks bitvec.Label) *Node {
	if b == nil {
		return newNode(frame, tasks)
	}
	if len(b.slab) == 0 {
		switch {
		case b.size == 0:
			b.size = 32
		case b.size < 1024:
			b.size *= 2
		}
		b.slab = make([]Node, b.size)
	}
	n := &b.slab[0]
	b.slab = b.slab[1:]
	n.Frame = frame
	n.Tasks = tasks
	return n
}

// Release returns every node of the tree to its allocation pool — the
// owning codec's free list for codec-built trees, the shared sync.Pool
// otherwise — and clears the tree. The caller must own the tree outright:
// none of its nodes may be shared with a live tree (the merge functions
// never share nodes between input and output, so releasing a filter's
// decoded inputs and encoded output is safe). Using the tree after
// Release is a bug; releasing it twice panics with a diagnostic, because
// a double release would hand nodes now owned by a live tree back to the
// allocator and corrupt whatever gets them next.
//
// A tree decoded by a Codec additionally returns its borrowed label
// storage to the codec's arena, and a tree decoded with
// DecodeTreeAliasing drops its pin on the leased wire buffer (see the
// Codec lifecycle notes); releasing such a tree on a goroutine other than
// the codec's is a data race.
func (t *Tree) Release() {
	if t.released {
		panic("trace: Tree.Release called twice (double release of a tree, or use of a released tree)")
	}
	t.released = true
	if t.Root != nil {
		recycleNodes(t.Root, t.owner)
		t.Root = nil
	}
	if t.pin != nil {
		p := t.pin
		t.pin = nil
		p.Release()
	}
	if t.owner != nil {
		o := t.owner
		t.owner = nil
		o.noteRelease()
		o.putTree(t)
	}
}

// recycleNodes is the one clear-and-recycle walk behind every release
// path: each node is stripped of its payload (keeping the Children
// backing array warm) and pushed to the owning codec's free list when
// owner is non-nil — falling back to the shared pool when the list is
// full — or straight to the shared pool otherwise.
func recycleNodes(root *Node, owner *Codec) {
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		n.Frame = Frame{}
		n.Tasks = nil
		for i := range n.Children {
			n.Children[i] = nil
		}
		n.Children = n.Children[:0]
		if owner != nil && len(owner.nodes) < nodeFreeListCap {
			owner.nodes = append(owner.nodes, n)
		} else {
			nodePool.Put(n)
		}
	}
	rec(root)
}
