package trace

import (
	"sync"

	"stat/internal/bitvec"
)

// nodePool recycles prefix-tree nodes. A TBON merge filter decodes its
// child trees, merges them, serializes the result and drops every
// intermediate tree — at a few hundred nodes per tree and one filter call
// per interior overlay node, allocation is the dominant cost of the merge
// path. The pool is shared by every tree and safe for concurrent filter
// workers; recycled nodes keep their Children backing array, so a
// steady-state filter reuses child slices instead of regrowing them.
var nodePool = sync.Pool{New: func() any { return new(Node) }}

// newNode returns a pooled node initialized with the given frame and
// label and no children.
func newNode(frame Frame, tasks *bitvec.Vector) *Node {
	n := nodePool.Get().(*Node)
	n.Frame = frame
	n.Tasks = tasks
	return n
}

// Release returns every node of the tree to the allocation pool and
// clears the tree. The caller must own the tree outright: none of its
// nodes may be shared with a live tree (the merge functions never share
// nodes between input and output, so releasing a filter's decoded inputs
// and encoded output is safe). Using the tree after Release is a bug.
func (t *Tree) Release() {
	if t.Root == nil {
		return
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		n.Frame = Frame{}
		n.Tasks = nil
		for i := range n.Children {
			n.Children[i] = nil
		}
		n.Children = n.Children[:0]
		nodePool.Put(n)
	}
	rec(t.Root)
	t.Root = nil
}
