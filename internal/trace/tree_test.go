package trace

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func stack(fns ...string) []Frame {
	out := make([]Frame, len(fns))
	for i, f := range fns {
		out[i] = Frame{Function: f}
	}
	return out
}

func TestAddBuildsPrefixTree(t *testing.T) {
	tr := NewTree(4)
	tr.AddStack(0, "main", "a", "b")
	tr.AddStack(1, "main", "a", "c")
	tr.AddStack(2, "main", "a")
	tr.AddStack(3, "main", "d")

	if got := tr.NodeCount(); got != 5 {
		t.Errorf("NodeCount = %d, want 5 (main,a,b,c,d)", got)
	}
	if got := tr.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	main := tr.Root.Children[0]
	if main.Frame.Function != "main" || main.Tasks.Count() != 4 {
		t.Errorf("main node: %v %v", main.Frame, main.Tasks)
	}
	a := main.child("a")
	if a == nil || !reflect.DeepEqual(a.Tasks.Members(), []int{0, 1, 2}) {
		t.Errorf("a node tasks = %v", a.Tasks.Members())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddIdempotent(t *testing.T) {
	tr := NewTree(2)
	tr.AddStack(0, "main", "x")
	before := tr.String()
	tr.AddStack(0, "main", "x")
	if tr.String() != before {
		t.Errorf("re-adding a trace changed the tree")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range task")
		}
	}()
	NewTree(2).AddStack(5, "main")
}

func TestChildrenSorted(t *testing.T) {
	tr := NewTree(3)
	tr.AddStack(0, "main", "zeta")
	tr.AddStack(1, "main", "alpha")
	tr.AddStack(2, "main", "mid")
	main := tr.Root.Children[0]
	var names []string
	for _, c := range main.Children {
		names = append(names, c.Frame.Function)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("children order = %v", names)
	}
}

func TestMergeUnion(t *testing.T) {
	a := NewTree(4)
	a.AddStack(0, "main", "x")
	a.AddStack(2, "main", "y")
	b := NewTree(4)
	b.AddStack(1, "main", "x")
	b.AddStack(3, "main", "z")

	if err := MergeUnion(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	main := a.Root.Children[0]
	if main.Tasks.Count() != 4 {
		t.Errorf("main tasks = %v", main.Tasks)
	}
	x := main.child("x")
	if x == nil || !reflect.DeepEqual(x.Tasks.Members(), []int{0, 1}) {
		t.Errorf("x tasks = %v", x.Tasks.Members())
	}
	if main.child("z") == nil {
		t.Error("z branch missing after union")
	}
	// Mismatched widths must error.
	if err := MergeUnion(a, NewTree(5)); err == nil {
		t.Error("union of different task spaces accepted")
	}
}

func TestMergeConcat(t *testing.T) {
	// Daemon 0 holds 2 tasks, daemon 1 holds 3.
	d0 := NewTree(2)
	d0.AddStack(0, "main", "x")
	d0.AddStack(1, "main", "y")
	d1 := NewTree(3)
	d1.AddStack(0, "main", "x")
	d1.AddStack(1, "main", "y")
	d1.AddStack(2, "main", "hang")

	m := MergeConcat(d0, d1)
	if m.NumTasks != 5 {
		t.Fatalf("NumTasks = %d, want 5", m.NumTasks)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	main := m.Root.Children[0]
	if main.Tasks.Count() != 5 {
		t.Errorf("main label = %v", main.Tasks)
	}
	x := main.child("x")
	// d0 task 0 stays index 0; d1 task 0 becomes index 2.
	if !reflect.DeepEqual(x.Tasks.Members(), []int{0, 2}) {
		t.Errorf("x label = %v", x.Tasks.Members())
	}
	hang := main.child("hang")
	if !reflect.DeepEqual(hang.Tasks.Members(), []int{4}) {
		t.Errorf("hang label = %v", hang.Tasks.Members())
	}
}

func TestMergeConcatAssociative(t *testing.T) {
	// ReduceSeq folds pairwise; the result must match the all-at-once merge.
	mk := func(n int, seed int64) *Tree {
		r := rand.New(rand.NewSource(seed))
		tr := NewTree(n)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				tr.AddStack(i, "main", "a", "b")
			case 1:
				tr.AddStack(i, "main", "a", "c")
			default:
				tr.AddStack(i, "main", "d")
			}
		}
		return tr
	}
	a, b, c := mk(3, 1), mk(4, 2), mk(5, 3)
	allAtOnce := MergeConcat(a, b, c)
	folded := MergeConcat(MergeConcat(a, b), c)
	if !allAtOnce.Equal(folded) {
		t.Errorf("concat merge not associative:\n%s\nvs\n%s", allAtOnce, folded)
	}
}

func TestRemapTree(t *testing.T) {
	// Concatenated daemon order: d0={ranks 0,2}, d1={ranks 1,3}.
	d0 := NewTree(2)
	d0.AddStack(0, "main", "x") // rank 0
	d0.AddStack(1, "main", "y") // rank 2
	d1 := NewTree(2)
	d1.AddStack(0, "main", "x") // rank 1
	d1.AddStack(1, "main", "y") // rank 3
	m := MergeConcat(d0, d1)
	if err := m.Remap([]int{0, 2, 1, 3}, 4); err != nil {
		t.Fatal(err)
	}
	x := m.Root.Children[0].child("x")
	if !reflect.DeepEqual(x.Tasks.Members(), []int{0, 1}) {
		t.Errorf("x after remap = %v, want ranks [0 1]", x.Tasks.Members())
	}
	y := m.Root.Children[0].child("y")
	if !reflect.DeepEqual(y.Tasks.Members(), []int{2, 3}) {
		t.Errorf("y after remap = %v, want ranks [2 3]", y.Tasks.Members())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewTree(2)
	a.AddStack(0, "main", "x")
	b := a.Clone()
	b.AddStack(1, "main", "y")
	if a.Equal(b) {
		t.Error("mutating clone affected original (or Equal broken)")
	}
	if a.Root.Children[0].child("y") != nil {
		t.Error("clone shares nodes with original")
	}
}

func TestEquivalenceClasses(t *testing.T) {
	tr := NewTree(6)
	// 4 tasks in the barrier, 1 hung, 1 in waitall.
	for _, task := range []int{0, 3, 4, 5} {
		tr.AddStack(task, "main", "PMPI_Barrier", "poll")
	}
	tr.AddStack(1, "main", "do_SendOrStall")
	tr.AddStack(2, "main", "PMPI_Waitall")

	classes := tr.EquivalenceClasses()
	if len(classes) != 3 {
		t.Fatalf("got %d classes: %v", len(classes), classes)
	}
	// Sorted by descending size: barrier class first.
	if !reflect.DeepEqual(classes[0].Tasks, []int{0, 3, 4, 5}) {
		t.Errorf("largest class = %v", classes[0])
	}
	if classes[0].Path[len(classes[0].Path)-1] != "poll" {
		t.Errorf("largest class path = %v", classes[0].Path)
	}
	for _, c := range classes[1:] {
		if len(c.Tasks) != 1 {
			t.Errorf("singleton class expected, got %v", c)
		}
	}
	if classes[1].Representative() < 0 {
		t.Error("Representative on non-empty class < 0")
	}
}

func TestEquivalenceClassesMidPathResidual(t *testing.T) {
	// A task whose stack ends where others continue forms its own class at
	// the interior node.
	tr := NewTree(3)
	tr.AddStack(0, "main", "a")
	tr.AddStack(1, "main", "a", "b")
	tr.AddStack(2, "main", "a", "b")
	classes := tr.EquivalenceClasses()
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	var foundMid bool
	for _, c := range classes {
		if len(c.Tasks) == 1 && c.Tasks[0] == 0 && c.Path[len(c.Path)-1] == "a" {
			foundMid = true
		}
	}
	if !foundMid {
		t.Errorf("no mid-path class for task 0: %v", classes)
	}
}

func TestStringRendering(t *testing.T) {
	tr := NewTree(2)
	tr.AddStack(0, "main", "x")
	tr.AddStack(1, "main")
	s := tr.String()
	if !strings.Contains(s, "main 2:[0-1]") {
		t.Errorf("String output missing merged label:\n%s", s)
	}
	if !strings.Contains(s, "x 1:[0]") {
		t.Errorf("String output missing leaf label:\n%s", s)
	}
}

// randomTree builds an arbitrary valid tree for property tests.
func randomTree(r *rand.Rand, n int) *Tree {
	tr := NewTree(n)
	funcs := []string{"a", "b", "c", "d", "e"}
	for task := 0; task < n; task++ {
		depth := 1 + r.Intn(5)
		fs := []string{"main"}
		for i := 0; i < depth; i++ {
			fs = append(fs, funcs[r.Intn(len(funcs))])
		}
		tr.AddStack(task, fs...)
	}
	return tr
}

func TestQuickValidateAfterRandomBuild(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 1+r.Intn(60))
		return tr.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		a1, b1 := randomTree(r, n), randomTree(r, n)
		a2, b2 := a1.Clone(), b1.Clone()
		if MergeUnion(a1, b1) != nil || MergeUnion(b2, a2) != nil {
			return false
		}
		return a1.Equal(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatThenRemapEqualsUnionOfGlobal(t *testing.T) {
	// End-to-end data-structure invariant (the heart of Section V): merging
	// subtree-local trees by concatenation and remapping at the root gives
	// exactly the tree the original scheme would have produced.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		daemons := 1 + r.Intn(6)
		local := make([][]int, daemons)
		for rank := 0; rank < n; rank++ {
			d := rank % daemons
			local[d] = append(local[d], rank)
		}
		funcs := []string{"a", "b", "c"}
		stackFor := func(rank int) []string {
			rr := rand.New(rand.NewSource(int64(rank) * seed))
			fs := []string{"main"}
			for i := 0; i < 1+rr.Intn(3); i++ {
				fs = append(fs, funcs[rr.Intn(len(funcs))])
			}
			return fs
		}

		// Original scheme: one global tree.
		global := NewTree(n)
		for rank := 0; rank < n; rank++ {
			global.AddStack(rank, stackFor(rank)...)
		}

		// Optimized scheme: per-daemon local trees, concat, remap.
		parts := make([]*Tree, daemons)
		var perm []int
		for d := 0; d < daemons; d++ {
			parts[d] = NewTree(len(local[d]))
			for i, rank := range local[d] {
				parts[d].AddStack(i, stackFor(rank)...)
				perm = append(perm, rank)
			}
		}
		merged := MergeConcat(parts...)
		if err := merged.Remap(perm, n); err != nil {
			return false
		}
		return merged.Equal(global)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
