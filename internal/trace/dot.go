package trace

import (
	"fmt"
	"io"
	"strings"

	"stat/internal/bitvec"
)

// formatRanges is re-exported locally for classes.go.
func formatRanges(members []int) string { return bitvec.FormatRanges(members) }

// WriteDOT renders the tree in Graphviz DOT form, matching the visual
// layout of the paper's Figure 1: one box per call-graph node, edges
// labeled with "count:[ranks]". The sentinel root is drawn as the program
// entry when it has a single child, otherwise as "<root>".
func (t *Tree) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	b.WriteString("digraph stat {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	}
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")

	id := 0
	var rec func(n *Node) int
	rec = func(n *Node) int {
		my := id
		id++
		name := n.Frame.Function
		if name == "" {
			name = "<root>"
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", my, name)
		for _, c := range n.Children {
			ci := rec(c)
			label := truncateLabel(c.Tasks, 32)
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", my, ci, label)
		}
		return my
	}
	// Skip the sentinel when it has exactly one child (the usual _start).
	start := t.Root
	if len(start.Children) == 1 && start.Frame.Function == "" {
		start = start.Children[0]
	}
	rec(start)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// truncateLabel renders a task-set label, eliding long range lists the way
// the paper's Figure 1 does ("577:[0,3,8-9,17,...]").
func truncateLabel(v bitvec.Label, maxRanges int) string {
	members := v.Members()
	full := bitvec.FormatRanges(members)
	if len(full) <= maxRanges {
		return fmt.Sprintf("%d:[%s]", len(members), full)
	}
	cut := full[:maxRanges]
	if i := strings.LastIndexByte(cut, ','); i > 0 {
		cut = cut[:i]
	}
	return fmt.Sprintf("%d:[%s,...]", len(members), cut)
}
