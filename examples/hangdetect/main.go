// Hangdetect: the paper's motivating scenario at BG/L scale. An MPI ring
// test hangs; STAT samples all 16,384 tasks over time, merges the stack
// traces into the 3D trace/space/time prefix tree, and isolates the one
// task that never reaches its send — the needle in a 16K-task haystack.
// The merged tree is also written as Graphviz DOT (the paper's Figure 1).
package main

import (
	"fmt"
	"log"
	"os"

	"stat/internal/core"
	"stat/internal/machine"
	"stat/internal/mpisim"
	"stat/internal/topology"
)

func main() {
	const tasks = 16384
	// The bug: rank 7000 hangs before its send (any rank works; the paper
	// used rank 1).
	app, err := mpisim.NewRing(tasks, mpisim.WithBugTask(7000))
	if err != nil {
		log.Fatal(err)
	}

	tool, err := core.New(core.Options{
		Machine:  machine.BGL(),
		Mode:     machine.CO,
		Tasks:    tasks,
		Topology: topology.Spec{Kind: topology.KindBGL2Deep},
		BitVec:   core.Hierarchical,
		App:      app,
		Samples:  10,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	if res.LaunchErr != nil || res.MergeErr != nil {
		log.Fatalf("environment failure: %v %v", res.LaunchErr, res.MergeErr)
	}

	fmt.Printf("sampled %d tasks through %d I/O-node daemons\n", res.Tasks, res.Daemons)
	fmt.Printf("3D tree: %d nodes, depth %d\n\n", res.Tree3D.NodeCount(), res.Tree3D.Depth())

	// Find the hang: the singleton classes are the suspects.
	var suspects []int
	for _, c := range res.Classes {
		if len(c.Tasks) == 1 {
			fmt.Printf("suspect rank %d: %s\n", c.Tasks[0], c.Path[len(c.Path)-1])
			suspects = append(suspects, c.Tasks[0])
		}
	}
	fmt.Printf("\nsearch space reduced: %d tasks -> %d suspects\n", tasks, len(suspects))

	// Verify against ground truth (the simulator knows who hung).
	for _, s := range suspects {
		fmt.Printf("ground truth for rank %d: %s\n", s, app.State(s))
	}

	// Second pass: the progress check separates the wedged task from its
	// merely-waiting victim. Two sampling rounds at function+offset
	// granularity — only a frozen stack matches itself exactly.
	tool2, err := core.New(core.Options{
		Machine:  machine.BGL(),
		Mode:     machine.CO,
		Tasks:    tasks,
		Topology: topology.Spec{Kind: topology.KindBGL2Deep},
		BitVec:   core.Hierarchical,
		App:      app,
		Samples:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := tool2.ProgressCheck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogress check (two rounds, detailed granularity): stuck = %v\n",
		rep.Stuck.Members())

	f, err := os.Create("hang.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.Tree3D.WriteDOT(f, "hung ring application, 16384 tasks"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote hang.dot (render with: dot -Tpdf hang.dot)")
}
