// Emulation: use the STATBench-style emulator (the authors' own
// scalability methodology, their reference [9]) to answer a question the
// ring app cannot: how does merge cost respond to the *shape* of the
// stack population — a clean hang (2 classes), a realistic mixed workload
// (32 classes), and pathological noise (one class per task)?
package main

import (
	"fmt"
	"log"

	"stat/internal/emul"
	"stat/internal/machine"
	"stat/internal/tbon"
	"stat/internal/topology"
)

func main() {
	m := machine.BGL()
	model := tbon.TimingModel{Link: m.TreeLink, CPU: m.MergeCPU, ConstSec: m.MergeConstSec}
	const tasks, daemons = 32768, 512

	fmt.Printf("emulated merge at %d tasks / %d daemons (BG/L 2-deep):\n\n", tasks, daemons)
	fmt.Printf("%-28s %10s %14s %14s %10s\n", "population", "classes", "leaf payload", "FE ingress", "merge")
	for _, sc := range []struct {
		name      string
		eqClasses int
	}{
		{"clean hang", 2},
		{"mixed workload", 32},
		{"noise (class per task)", tasks},
	} {
		spec := emul.Spec{Tasks: tasks, Depth: 10, Branch: 6, EqClasses: sc.eqClasses, Seed: 17}
		res, err := emul.Run(spec, daemons, topology.Spec{Kind: topology.KindBGL2Deep}, true, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10d %13dB %13dB %9.3fs\n",
			sc.name, len(res.Classes), res.MaxLeafBytes, res.FrontEndInBytes, res.ModeledSec)
	}

	fmt.Println("\nclass membership is verified against the generator's ground truth")
	fmt.Println("in internal/emul's tests; the tool degrades gracefully toward noise.")
}
