// Threads: the paper's Section VII projection, implemented. Collect a call
// stack from every thread of every task, keep associating stacks with the
// process, and watch threads act as a multiplier on tool load: a 1,024-task
// job with 8 threads per task presents the sampling load of an 8,192-task
// job (the paper's "10,000 nodes with 8 threads presents many of the same
// challenges as 80,000 nodes").
package main

import (
	"fmt"
	"log"

	"stat/internal/core"
	"stat/internal/machine"
	"stat/internal/topology"
)

func run(tasks, threads int) *core.Result {
	tool, err := core.New(core.Options{
		Machine:        machine.Atlas(),
		Tasks:          tasks,
		Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
		BitVec:         core.Hierarchical,
		ThreadsPerTask: threads,
		UseSBRS:        true, // isolate the thread effect from file I/O
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := run(1024, 1)
	threaded := run(1024, 8)
	big := run(8192, 1)

	// The multiplier: adding tasks adds daemons (the machine places one
	// per node), so per-daemon sampling cost stays flat. Adding threads
	// multiplies every daemon's load with no new daemons to absorb it.
	fmt.Println("sampling-phase cost (modeled):")
	fmt.Printf("  1024 tasks x 1 thread:  %6.2fs (%4d daemons)\n", base.Times.Sample, base.Daemons)
	fmt.Printf("  8192 tasks x 1 thread:  %6.2fs (%4d daemons — more tasks brought more daemons)\n",
		big.Times.Sample, big.Daemons)
	fmt.Printf("  1024 tasks x 8 threads: %6.2fs (%4d daemons — same daemons, 8x the stacks)\n",
		threaded.Times.Sample, threaded.Daemons)

	fmt.Printf("\nmerge stays tree-friendly: %.4fs single-threaded, %.4fs with 8 threads\n",
		base.Times.Merge, threaded.Times.Merge)

	// Thread stacks fold into the per-process classes: worker threads show
	// up as their own call paths without multiplying the class count by
	// the thread count.
	fmt.Printf("\nequivalence classes: %d single-threaded, %d with 8 threads\n",
		len(base.Classes), len(threaded.Classes))
	for _, c := range threaded.Classes {
		last := c.Path[len(c.Path)-1]
		if last == "compute_kernel" || last == "pthread_cond_wait" {
			fmt.Printf("  worker-thread class: %s\n", c)
		}
	}
}
