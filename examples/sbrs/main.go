// SBRS: Section VI as a runnable demo. 128 Atlas daemons each need the
// symbol tables of the application binaries before they can sample. With
// the binaries on the shared NFS mount, every daemon hammers the same file
// server; with the Scalable Binary Relocation Service, one master daemon
// fetches each binary once, broadcasts it over the tool's own tree to
// node-local RAM disk, and interposes the daemons' open() calls.
package main

import (
	"fmt"
	"log"

	"stat/internal/core"
	"stat/internal/machine"
	"stat/internal/topology"
)

func sampleTime(useSBRS bool, tasks int) (float64, *core.Tool) {
	tool, err := core.New(core.Options{
		Machine:  machine.Atlas(),
		Tasks:    tasks,
		Topology: topology.Spec{Kind: topology.KindFlat},
		Samples:  10,
	})
	if err != nil {
		log.Fatal(err)
	}
	sec, rep, err := tool.MeasureSample(useSBRS)
	if err != nil {
		log.Fatal(err)
	}
	if rep != nil {
		fmt.Printf("  relocated %d files (%d bytes) in %.3fs: %v\n",
			len(rep.Relocated), rep.Bytes, rep.TotalSec, rep.Relocated)
	}
	return sec, tool
}

func main() {
	fmt.Println("STAT sampling phase on Atlas (1024 tasks, 128 daemons):")

	fmt.Println("\nbinaries on shared NFS:")
	nfs, _ := sampleTime(false, 1024)
	fmt.Printf("  sampling took %.2fs (all daemons parse symbols off one filer)\n", nfs)

	fmt.Println("\nwith the scalable binary relocation service:")
	sbrs, _ := sampleTime(true, 1024)
	fmt.Printf("  sampling took %.2fs (symbols read from node-local RAM disk)\n", sbrs)

	fmt.Printf("\nspeedup: %.1fx; and the SBRS number stays flat as the job grows:\n", nfs/sbrs)
	for _, tasks := range []int{256, 1024, 4096} {
		s, _ := sampleTime(true, tasks)
		fmt.Printf("  %5d tasks: %.2fs\n", tasks, s)
	}
}
