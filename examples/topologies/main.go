// Topologies: the paper's Section V lesson as a runnable comparison. The
// same merge is driven through a flat tree and 2-deep trees with both
// task-set representations, on the BG/L model at increasing scales. Watch
// the flat tree die at 256 daemons, the original bit vectors blow up the
// front end's ingress, and the hierarchical representation keep both the
// bytes and the modeled time flat.
package main

import (
	"fmt"
	"log"

	"stat/internal/core"
	"stat/internal/machine"
	"stat/internal/topology"
)

func main() {
	type config struct {
		name string
		topo topology.Spec
		bv   core.BitVecMode
	}
	configs := []config{
		{"1-deep original", topology.Spec{Kind: topology.KindFlat}, core.Original},
		{"2-deep original", topology.Spec{Kind: topology.KindBGL2Deep}, core.Original},
		{"2-deep hierarchical", topology.Spec{Kind: topology.KindBGL2Deep}, core.Hierarchical},
	}

	fmt.Printf("%-22s %12s %14s %14s %12s\n", "configuration", "tasks", "leaf payload", "FE ingress", "merge time")
	for _, nodes := range []int{4096, 16384, 65536} {
		for _, cfg := range configs {
			tool, err := core.New(core.Options{
				Machine:  machine.BGL(),
				Mode:     machine.CO,
				Tasks:    nodes,
				Topology: cfg.topo,
				BitVec:   cfg.bv,
				Samples:  5,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := tool.MeasureMerge()
			if err != nil {
				log.Fatal(err)
			}
			if res.MergeErr != nil {
				fmt.Printf("%-22s %12d %14s %14s %12s\n", cfg.name, nodes, "-", "-", "FAIL")
				continue
			}
			fmt.Printf("%-22s %12d %13dB %13dB %11.4fs\n",
				cfg.name, nodes, res.MaxLeafPayloadBytes, res.FrontEndInBytes, res.Times.Merge)
		}
		fmt.Println()
	}
	fmt.Println("the hierarchical representation sends subtree-local task lists;")
	fmt.Println("the original sends job-width bit vectors from every daemon.")
}
