// Quickstart: run STAT on a 256-task MPI ring application with an injected
// hang and print the process equivalence classes. This is the tool's core
// workflow — reduce 256 suspect tasks to a handful of representatives that
// a heavyweight debugger can attach to.
package main

import (
	"fmt"
	"log"

	"stat/internal/core"
	"stat/internal/machine"
	"stat/internal/topology"
)

func main() {
	tool, err := core.New(core.Options{
		Machine:  machine.Atlas(),
		Tasks:    256,
		Topology: topology.Spec{Kind: topology.KindBalanced, Depth: 2},
		BitVec:   core.Hierarchical,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	if res.LaunchErr != nil || res.MergeErr != nil {
		log.Fatalf("environment failure: %v %v", res.LaunchErr, res.MergeErr)
	}

	fmt.Printf("STAT run: %d tasks via %d daemons\n", res.Tasks, res.Daemons)
	fmt.Printf("phases: launch %.1fs, sample %.1fs, merge %.4fs, remap %.4fs\n\n",
		res.Times.Launch, res.Times.Sample, res.Times.Merge, res.Times.Remap)

	fmt.Println("process equivalence classes (2D trace×space tree):")
	for _, c := range res.Classes {
		fmt.Printf("  %s\n", c)
	}

	// The classes direct the debugging session: attach to one
	// representative of each small class.
	fmt.Println("\nsuggested debugger attach targets:")
	for _, c := range res.Classes {
		if len(c.Tasks) <= 4 {
			fmt.Printf("  rank %d (%s)\n", c.Representative(), c.Path[len(c.Path)-1])
		}
	}
}
