// Package stat_test holds the benchmark harness: one benchmark per figure
// of the paper's evaluation (regenerating the figure's series via the
// statbench harness and reporting the headline modeled seconds), plus
// ablation benchmarks over the design choices DESIGN.md calls out and raw
// data-structure benchmarks for the real in-memory work.
//
// Run everything:
//
//	go test -bench=. -benchmem
package stat_test

import (
	"fmt"
	"testing"

	"stat/internal/bitvec"
	"stat/internal/core"
	"stat/internal/emul"
	"stat/internal/machine"
	"stat/internal/mpisim"
	"stat/internal/statbench"
	"stat/internal/tbon"
	"stat/internal/topology"
	"stat/internal/trace"
)

func quickCfg() statbench.Config { return statbench.QuickConfig() }

// reportLast attaches the figure's largest-scale modeled time as a metric,
// so `go test -bench` output doubles as a summary of the reproduction.
func reportLast(b *testing.B, fig *statbench.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		for i := len(s.Points) - 1; i >= 0; i-- {
			if !s.Points[i].Failed {
				b.ReportMetric(s.Points[i].Seconds, "modeled_s/"+sanitize(s.Name))
				break
			}
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig1PrefixTree builds and merges the 1024-task 3D
// trace/space/time tree of the hung ring app — the real data-structure
// work behind the paper's Figure 1.
func BenchmarkFig1PrefixTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := statbench.Fig1(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		if res.Tree3D.NodeCount() == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkFig2Startup regenerates Atlas startup (LaunchMON vs MRNet rsh).
func BenchmarkFig2Startup(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig3StartupBGL regenerates BG/L startup across topologies,
// modes and control-system patch levels.
func BenchmarkFig3StartupBGL(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig3(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig4MergeAtlas regenerates Atlas merge times across tree depths
// (original bit vectors). This runs the real prefix-tree merges.
func BenchmarkFig4MergeAtlas(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig4(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig5MergeBGL regenerates BG/L merge times with the original bit
// vectors, including the 1-deep fan-in failure at 16,384 nodes.
func BenchmarkFig5MergeBGL(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig6BitVectorOps measures the raw bit-vector operations of the
// Figure 6 illustration at job scale: full-width union versus subtree
// concat + front-end remap for one edge label at 208K tasks.
func BenchmarkFig6BitVectorOps(b *testing.B) {
	const n = 212992
	b.Run("original_union", func(b *testing.B) {
		x := bitvec.New(n)
		y := bitvec.New(n)
		for i := 0; i < n; i += 3 {
			y.Set(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.UnionWith(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized_concat", func(b *testing.B) {
		parts := make([]*bitvec.Vector, 1664)
		for i := range parts {
			parts[i] = bitvec.New(128)
			parts[i].Set(i % 128)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := bitvec.Concat(parts...)
			if v.Len() != 1664*128 {
				b.Fatal("bad width")
			}
		}
	})
	b.Run("frontend_remap", func(b *testing.B) {
		v := bitvec.New(n)
		for i := 0; i < n; i += 2 {
			v.Set(i)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i*7919 + 13) % n
		}
		// 7919 is coprime with 212992, so perm is a permutation.
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.Remap(perm, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frontend_remap_fused", func(b *testing.B) {
		// The decode-fused formulation runMergePhase uses: a precompiled
		// permutation applied while the label materializes from its wire
		// bytes — one pass, arena-backed, no intermediate vector and no
		// second scattered-store sweep. Comparable work to frontend_remap
		// (same label, same permutation) minus the per-call validation,
		// the decode-then-remap double pass and the output allocation.
		v := bitvec.New(n)
		for i := 0; i < n; i += 2 {
			v.Set(i)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i*7919 + 13) % n
		}
		r, err := bitvec.NewRemapper(perm, n)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := v.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var arena bitvec.Arena
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := arena.RemapBinary(wire, r); err != nil {
				b.Fatal(err)
			}
			arena.Reset()
		}
	})
	b.Run("frontend_remap_inplace", func(b *testing.B) {
		// The cycle-walking in-place form Tree.RemapWith falls back to:
		// zero allocation, bits rotated along the permutation's cycles
		// inside the vector's own words.
		v := bitvec.New(n)
		for i := 0; i < n; i += 2 {
			v.Set(i)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i*7919 + 13) % n
		}
		r, err := bitvec.NewRemapper(perm, n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.ApplyInPlace(v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7OptimizedMerge regenerates the headline comparison:
// original versus hierarchical bit vectors on BG/L up to 208K tasks.
func BenchmarkFig7OptimizedMerge(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig7(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig8SamplingAtlas regenerates Atlas NFS-bound sampling.
func BenchmarkFig8SamplingAtlas(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig8(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig9SamplingBGL regenerates BG/L sampling across topologies.
func BenchmarkFig9SamplingBGL(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig9(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// BenchmarkFig10SBRS regenerates Atlas sampling with the binary relocation
// service (NFS vs Lustre vs SBRS).
func BenchmarkFig10SBRS(b *testing.B) {
	var fig *statbench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = statbench.Fig10(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, fig)
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkMergeBitVecModes ablates the task-set representation at a fixed
// scale (BG/L CO, 16,384 tasks), measuring the real end-to-end reduction.
func BenchmarkMergeBitVecModes(b *testing.B) {
	for _, mode := range []core.BitVecMode{core.Original, core.Hierarchical} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tool, err := core.New(core.Options{
					Machine:  machine.BGL(),
					Mode:     machine.CO,
					Tasks:    16384,
					Topology: topology.Spec{Kind: topology.KindBGL2Deep},
					BitVec:   mode,
					Samples:  3,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tool.MeasureMerge()
				if err != nil {
					b.Fatal(err)
				}
				if res.MergeErr != nil {
					b.Fatal(res.MergeErr)
				}
				b.ReportMetric(float64(res.FrontEndInBytes), "fe_bytes")
			}
		})
	}
}

// BenchmarkTopologySweep ablates analysis-tree depth at fixed scale.
func BenchmarkTopologySweep(b *testing.B) {
	specs := map[string]topology.Spec{
		"1-deep": {Kind: topology.KindFlat},
		"2-deep": {Kind: topology.KindBalanced, Depth: 2},
		"3-deep": {Kind: topology.KindBalanced, Depth: 3},
	}
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tool, err := core.New(core.Options{
					Machine:  machine.Atlas(),
					Tasks:    2048,
					Topology: spec,
					BitVec:   core.Original,
					Samples:  3,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tool.MeasureMerge()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Times.Merge, "modeled_s")
			}
		})
	}
}

// BenchmarkThreadsExtension ablates the Section VII thread multiplier.
func BenchmarkThreadsExtension(b *testing.B) {
	for _, threads := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tool, err := core.New(core.Options{
					Machine:        machine.Atlas(),
					Tasks:          512,
					Topology:       topology.Spec{Kind: topology.KindBalanced, Depth: 2},
					BitVec:         core.Hierarchical,
					ThreadsPerTask: threads,
					Samples:        3,
				})
				if err != nil {
					b.Fatal(err)
				}
				sec, _, err := tool.MeasureSample(true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sec, "modeled_s")
			}
		})
	}
}

// BenchmarkReduceParallelVsSeq compares the concurrent TBON reduction with
// the low-memory sequential fold on identical real workloads.
func BenchmarkReduceParallelVsSeq(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tool, err := core.New(core.Options{
					Machine:  machine.Atlas(),
					Tasks:    1024,
					Topology: topology.Spec{Kind: topology.KindBalanced, Depth: 2},
					BitVec:   core.Hierarchical,
					Samples:  3,
					Parallel: parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tool.MeasureMerge(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReduceEngines is the reduction-engine shootout: identical
// leaf payloads and an identical CPU-bearing associative filter, swept
// across topology shapes, engines and pipelined byte budgets. On a
// multi-core host the pipelined engine's wide-topology rows should beat
// seq by roughly the core count (the filter work on sibling subtrees is
// independent); the budget rows show how much of that survives a memory
// cap. Chain is the adversarial floor: no available parallelism, so
// pipelined should match seq there, not lose to it.
//
// Smoke run (CI): go test -bench=ReduceEngines -benchtime=1x
func BenchmarkReduceEngines(b *testing.B) {
	const payloadBytes = 16 << 10
	// xorFoldFilter is associative and commutative over ordered inputs:
	// output = elementwise XOR, sized to the widest child. CPU is linear
	// in input bytes and output stays payload-sized up the tree — the
	// shape of a well-behaved merge.
	xorFoldFilter := tbon.BytesFilter(func(children [][]byte) ([]byte, error) {
		width := 0
		for _, c := range children {
			if len(c) > width {
				width = len(c)
			}
		}
		out := make([]byte, width)
		for _, c := range children {
			for i, v := range c {
				out[i] ^= v
			}
		}
		return out, nil
	})
	topos := []struct {
		name  string
		build func() (*topology.Tree, error)
	}{
		{"wide-2deep-256", func() (*topology.Tree, error) { return topology.Balanced(2, 256) }},
		{"3deep-512", func() (*topology.Tree, error) { return topology.Balanced(3, 512) }},
		{"ragged", func() (*topology.Tree, error) { return topology.Ragged(42, 3, 8) }},
		{"chain-8", func() (*topology.Tree, error) { return topology.Chain(8) }},
	}
	engines := []struct {
		name string
		opts tbon.ReduceOptions
	}{
		{"seq", tbon.ReduceOptions{Engine: tbon.EngineSeq}},
		{"concurrent", tbon.ReduceOptions{Engine: tbon.EngineConcurrent}},
		{"pipelined", tbon.ReduceOptions{Engine: tbon.EnginePipelined}},
		{"pipelined-budget=1MiB", tbon.ReduceOptions{Engine: tbon.EnginePipelined, BudgetBytes: 1 << 20}},
		{"pipelined-budget=64KiB", tbon.ReduceOptions{Engine: tbon.EnginePipelined, BudgetBytes: 64 << 10}},
	}
	for _, tc := range topos {
		topo, err := tc.build()
		if err != nil {
			b.Fatal(err)
		}
		net := tbon.New(topo, nil)
		payloads := make([][]byte, topo.NumLeaves())
		for i := range payloads {
			payloads[i] = make([]byte, payloadBytes)
			for j := range payloads[i] {
				payloads[i][j] = byte(i*31 + j)
			}
		}
		leaf := func(i int) ([]byte, error) { return payloads[i], nil }
		for _, eng := range engines {
			b.Run(tc.name+"/"+eng.name, func(b *testing.B) {
				b.SetBytes(int64(topo.NumLeaves()) * payloadBytes)
				var peak int64
				for i := 0; i < b.N; i++ {
					_, stats, err := net.ReduceWith(eng.opts, leaf, xorFoldFilter)
					if err != nil {
						b.Fatal(err)
					}
					if stats.PeakInFlightBytes > peak {
						peak = stats.PeakInFlightBytes
					}
				}
				if peak > 0 {
					b.ReportMetric(float64(peak), "peak_inflight_bytes")
				}
			})
		}
	}
}

// BenchmarkEmulShapeSweep runs the STATBench-style emulator over the
// design-space ablations: equivalence-class count and stack depth, in
// both representations.
func BenchmarkEmulShapeSweep(b *testing.B) {
	model := func() tbon.TimingModel {
		m := machine.BGL()
		return tbon.TimingModel{Link: m.TreeLink, CPU: m.MergeCPU, ConstSec: m.MergeConstSec}
	}
	for _, classes := range []int{4, 64, 1024} {
		for _, hier := range []bool{false, true} {
			name := fmt.Sprintf("classes=%d/original", classes)
			if hier {
				name = fmt.Sprintf("classes=%d/hierarchical", classes)
			}
			b.Run(name, func(b *testing.B) {
				spec := emul.Spec{Tasks: 8192, Depth: 8, Branch: 4, EqClasses: classes, Seed: 17}
				for i := 0; i < b.N; i++ {
					res, err := emul.Run(spec, 128, topology.Spec{Kind: topology.KindBGL2Deep}, hier, model())
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.ModeledSec, "modeled_s")
					b.ReportMetric(float64(res.FrontEndInBytes), "fe_bytes")
				}
			})
		}
	}
}

// --- Raw data-structure benchmarks ---------------------------------------

// BenchmarkTreeMergeUnion measures the real union merge of two daemon-sized
// trees with full-job-width labels (the per-filter work in original mode).
func BenchmarkTreeMergeUnion(b *testing.B) {
	app, err := mpisim.NewRing(4096)
	if err != nil {
		b.Fatal(err)
	}
	build := func(lo int) *trace.Tree {
		t := trace.NewTree(4096)
		for task := lo; task < lo+64; task++ {
			for s := 0; s < 3; s++ {
				t.AddStack(task, app.StackFuncs(task, 0, s)...)
			}
		}
		return t
	}
	src := build(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := build(0)
		if err := trace.MergeUnion(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeMergeConcat measures the concatenation merge of 26
// subtree-local trees (one BG/L communication process's filter work in
// hierarchical mode).
func BenchmarkTreeMergeConcat(b *testing.B) {
	app, err := mpisim.NewRing(4096)
	if err != nil {
		b.Fatal(err)
	}
	var parts []*trace.Tree
	for d := 0; d < 26; d++ {
		t := trace.NewTree(64)
		for local := 0; local < 64; local++ {
			task := d*64 + local
			for s := 0; s < 3; s++ {
				t.AddStack(local, app.StackFuncs(task, 0, s)...)
			}
		}
		parts = append(parts, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trace.MergeConcat(parts...)
		if m.NumTasks != 26*64 {
			b.Fatal("bad merge")
		}
	}
}

// BenchmarkTreeSerialize measures the wire encode/decode of a daemon
// payload in both representations and both wire formats. The wire_bytes
// metric is the wire-size-vs-alias tradeoff at BG/L widths: STR2's
// 8-byte padding costs a few percent on the narrow hierarchical payloads
// whose labels are small, and a fraction of a percent at full job width
// where labels dwarf names — the price of a 100% zero-copy alias rate.
func BenchmarkTreeSerialize(b *testing.B) {
	app, err := mpisim.NewRing(212992)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		width int
	}{
		{"original_208K_wide", 212992},
		{"hierarchical_128_wide", 128},
	} {
		for _, version := range []struct {
			name string
			v    uint8
		}{
			{"", trace.WireV1}, // unsuffixed = v1, keeping the gated series stable
			{"_v2", trace.WireV2},
			{"_v3", trace.WireV3},
		} {
			b.Run(mode.name+version.name, func(b *testing.B) {
				t := trace.NewTree(mode.width)
				for local := 0; local < 128; local++ {
					idx := local
					for s := 0; s < 3; s++ {
						t.AddStack(idx, app.StackFuncs(local, 0, s)...)
					}
				}
				data, err := t.MarshalBinaryV(version.v)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					enc, err := t.MarshalBinaryV(version.v)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := trace.UnmarshalBinary(enc); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(data)), "wire_bytes")
			})
		}
	}
}

// BenchmarkLabelV3 measures the STR3 label kernels against their dense
// (v1/v2) counterparts at the paper's full BG/L width (208K tasks in VN
// mode) and at the million-task target, on run-structured populations —
// the shape prefix-tree path nodes carry. encode is the freeze-time
// container choice + payload write; merge is the concatenation of 32
// child labels at precomputed rank offsets (extent append vs word blit);
// remap is the wire-to-front-end-order decode fused with a compiled
// permutation. Gated in CI by cmd/benchgate: the run-container rows must
// stay at least as fast as the dense rows at 208K (the ISSUE 7
// acceptance bar), which they clear by orders of magnitude because the
// compressed kernels touch O(extents) data instead of O(width/64) words.
func BenchmarkLabelV3(b *testing.B) {
	for _, w := range []struct {
		name  string
		width int
	}{
		{"208K", 212992},
		{"1M", 1 << 20},
	} {
		width := w.width
		// The run population: one extent spanning 3/4 of the job,
		// offset so no kernel can special-case "starts at zero".
		runSet := bitvec.NewRunSet(width, []bitvec.Extent{{Start: uint32(width / 8), Count: uint32(width / 4 * 3)}})
		dense := runSet.Clone()

		b.Run("encode/run_"+w.name, func(b *testing.B) {
			buf := make([]byte, bitvec.Label3Size(runSet))
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bitvec.PutLabel3(buf, runSet)
			}
			b.ReportMetric(float64(len(buf)), "wire_bytes")
		})
		b.Run("encode/dense_"+w.name, func(b *testing.B) {
			buf := make([]byte, dense.SerializedSize())
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dense.PutBinary(buf)
			}
			b.ReportMetric(float64(len(buf)), "wire_bytes")
		})

		// 32 children, each the full population of its width/32 slice —
		// what an interior node concatenates during a hierarchical merge.
		const fanIn = 32
		cw := width / fanIn
		childSet := bitvec.NewRunSet(cw, []bitvec.Extent{{Start: 0, Count: uint32(cw)}})
		childVec := childSet.Clone()
		b.Run("merge/run_"+w.name, func(b *testing.B) {
			extents := make([]bitvec.Extent, 0, fanIn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				extents = extents[:0]
				for c := 0; c < fanIn; c++ {
					extents = childSet.AppendExtents(extents, c*cw)
				}
			}
			if len(extents) != 1 { // adjacent full slices coalesce
				b.Fatalf("concat produced %d extents", len(extents))
			}
		})
		b.Run("merge/dense_"+w.name, func(b *testing.B) {
			dst := bitvec.New(width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < fanIn; c++ {
					childVec.BlitInto(dst, c*cw)
				}
			}
		})

		// Remap through a rotation permutation: the front-end reorder
		// fused into decode. The arena recycles its slabs across
		// iterations via Reset, as the production codec does per filter.
		perm := make([]int, width)
		for i := range perm {
			perm[i] = (i + width/3) % width
		}
		remapper, err := bitvec.NewRemapper(perm, width)
		if err != nil {
			b.Fatal(err)
		}
		runWire := make([]byte, bitvec.Label3Size(runSet))
		bitvec.PutLabel3(runWire, runSet)
		denseWire := make([]byte, dense.SerializedSize())
		dense.PutBinary(denseWire)
		var arena bitvec.Arena
		b.Run("remap/run_"+w.name, func(b *testing.B) {
			b.SetBytes(int64(len(runWire)))
			for i := 0; i < b.N; i++ {
				arena.Reset()
				if _, _, err := arena.RemapLabel3(runWire, remapper); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("remap/dense_"+w.name, func(b *testing.B) {
			b.SetBytes(int64(len(denseWire)))
			for i := 0; i < b.N; i++ {
				arena.Reset()
				if _, _, err := arena.RemapBinary(denseWire, remapper); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStackSampling measures the real per-task stack walk + local
// merge rate (what one daemon does 10x per task per sample).
func BenchmarkStackSampling(b *testing.B) {
	app, err := mpisim.NewRing(8192)
	if err != nil {
		b.Fatal(err)
	}
	tree := trace.NewTree(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := i % 8192
		tree.AddStack(task, app.StackFuncs(task, 0, i/8192)...)
	}
}

// BenchmarkTBONReduceOverlay measures the raw overlay (channel transport)
// on a 256-leaf, 2-deep tree with a byte-concat filter.
func BenchmarkTBONReduceOverlay(b *testing.B) {
	topo, err := topology.Balanced(2, 256)
	if err != nil {
		b.Fatal(err)
	}
	net := tbon.New(topo, nil)
	payload := make([]byte, 1024)
	// Ownership of a leaf buffer transfers to the engine, so each call
	// hands out its own copy rather than sharing one slice.
	leaf := func(int) ([]byte, error) { return append([]byte(nil), payload...), nil }
	filter := func(children []*tbon.Lease) (*tbon.Lease, error) {
		children[0].Retain()
		return children[0], nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Reduce(leaf, filter); err != nil {
			b.Fatal(err)
		}
	}
}
