module stat

go 1.24
